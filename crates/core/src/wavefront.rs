//! Wavefront lower-bound derivation (`sub_paramQ_bywavefront`, Algorithm 5).
//!
//! The wavefront argument (Sec. 6) lower-bounds I/O by the number of
//! simultaneously *live* values any schedule must hold: if `V₁` and `V₂` are
//! disjoint vertex sets such that every vertex of `V₂` is reachable from
//! every vertex of `V₁` through disjoint paths `L_j`, then some point of the
//! execution holds at least `m = |{L_j}|` live values and `Q ≥ m − S`
//! (Corollary 6.3).
//!
//! As in the paper, the implementation searches for a constrained pattern:
//! injective circuits on a statement `S` that advance the innermost
//! parametrized loop index by exactly one, connecting the slice `I_d = Ω` to
//! the slice `I_d = Ω + 1`. Reachability between the two slices is computed
//! with a conservative *under*-approximation of the transitive closure
//! (including closures of DFG self-loops met along a circuit), which can only
//! shrink the discovered wavefront and therefore never invalidates the bound.

use crate::bound::{LowerBound, Technique};
use iolb_dfg::Dfg;
use iolb_poly::{count, BasicMap, BasicSet, Constraint, Context, LinExpr, Map, Set, UnionSet};
use iolb_symbol::{Expr, Poly};

/// Inputs of the wavefront derivation.
pub struct WavefrontInput<'a> {
    /// The DFG under analysis (outer parametrized dimensions, if any, already
    /// restricted; the advanced dimension itself must remain free).
    pub dfg: &'a Dfg,
    /// The statement the reasoning is centred on.
    pub statement: &'a str,
    /// The starting slice: the statement domain with the parametrized
    /// dimensions (including the advanced one) fixed to the `Ω` parameters.
    pub slice_domain: &'a BasicSet,
    /// The 0-based index of the loop dimension being advanced (the innermost
    /// parametrized dimension `d` of Sec. 4.3).
    pub advance_dim: usize,
    /// Parameter context used for symbolic counting.
    pub ctx: &'a Context,
    /// Name of the fast-memory-capacity parameter (usually `"S"`).
    pub cache_param: &'a str,
}

/// A circuit through the target statement: its edge sequence, its composed
/// relation, and whether self-loop closures were spliced in (`pure = false`).
struct Circuit {
    edges: Vec<usize>,
    relation: Map,
    pure: bool,
}

/// Enumerates elementary circuits through `statement`, optionally splicing in
/// the reachability closure of self-loop edges met at intermediate vertices
/// (so that reductions expressed as DFG self-loops do not hide reachability).
fn circuit_relations(dfg: &Dfg, statement: &str, max_len: usize) -> Vec<Circuit> {
    let mut out = Vec::new();
    // Precompute self-loop closures per vertex.
    let mut self_closures: std::collections::BTreeMap<String, Map> = Default::default();
    for node in dfg.nodes() {
        if node.name == statement {
            continue;
        }
        if let Some(loops) = dfg.relation_between(&node.name, &node.name) {
            let closure = loops.reachability_closure_underapprox();
            if !closure.is_empty() {
                self_closures.insert(node.name.clone(), closure);
            }
        }
    }

    // DFS forward from `statement` back to itself without repeating
    // intermediate vertices. Each stack entry tracks the composed relation.
    struct Frame {
        edges: Vec<usize>,
        visited: Vec<String>,
        relation: Map,
        pure: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    for (ei, e) in dfg.edges_from(statement) {
        stack.push(Frame {
            edges: vec![ei],
            visited: vec![e.dst.clone()],
            relation: Map::from_basic(e.relation.clone()),
            pure: true,
        });
    }
    while let Some(frame) = stack.pop() {
        let current = frame.visited.last().expect("non-empty walk").clone();
        if current == statement {
            if !frame.relation.is_empty() {
                out.push(Circuit {
                    edges: frame.edges,
                    relation: frame.relation,
                    pure: frame.pure,
                });
            }
            continue;
        }
        if frame.edges.len() >= max_len {
            continue;
        }
        // Variants of the relation reaching `current`: with and without the
        // vertex's self-loop closure spliced in.
        let mut variants = vec![(frame.relation.clone(), frame.pure)];
        if let Some(closure) = self_closures.get(&current) {
            let extended = frame.relation.then(closure);
            if !extended.is_empty() {
                variants.push((extended, false));
            }
        }
        for (ei, e) in dfg.edges_from(&current) {
            if frame.visited.contains(&e.dst) && e.dst != statement {
                continue;
            }
            for (rel, pure) in &variants {
                let next_rel = rel.then(&Map::from_basic(e.relation.clone()));
                if next_rel.is_empty() {
                    continue;
                }
                let mut edges = frame.edges.clone();
                edges.push(ei);
                let mut visited = frame.visited.clone();
                visited.push(e.dst.clone());
                stack.push(Frame {
                    edges,
                    visited,
                    relation: next_rel,
                    pure: *pure,
                });
            }
        }
    }
    out
}

/// Builds the "advance dimension `d` by one, keep earlier dimensions" pattern
/// relation over the statement's space: `out_k = in_k` for `k < d`,
/// `out_d = in_d + 1`; later dimensions are kept equal too when
/// `constrain_later_equal` is set (the disjoint-path pattern) and left free
/// otherwise (the completeness pattern `R_complete`).
fn advance_pattern(space: &iolb_poly::Space, d: usize, constrain_later_equal: bool) -> BasicMap {
    let n = space.dim();
    let arity = 2 * n;
    let mut constraints = Vec::new();
    for k in 0..n {
        let diff = LinExpr::var(arity, n + k).sub(&LinExpr::var(arity, k));
        if k < d {
            constraints.push(Constraint::eq(diff));
        } else if k == d {
            constraints.push(Constraint::eq(diff.sub(&LinExpr::constant(arity, 1))));
        } else if constrain_later_equal {
            constraints.push(Constraint::eq(diff));
        }
    }
    BasicMap::from_constraints(space.clone(), space.clone(), constraints)
}

/// Derives a wavefront lower bound (Algorithm 5). Returns `None` when the
/// constrained pattern is not present or the wavefront cardinality cannot be
/// counted symbolically.
pub fn wavefront_bound(input: &WavefrontInput<'_>) -> Option<LowerBound> {
    let dfg = input.dfg;
    let statement = input.statement;
    let node = dfg.node(statement)?;
    let full_domain = &node.domain;
    let slice = input.slice_domain;
    let space = full_domain.space().clone();
    let d = input.advance_dim;
    if d >= space.dim() {
        return None;
    }
    let mut notes = Vec::new();

    let circuits = circuit_relations(dfg, statement, 4);
    if circuits.is_empty() {
        return None;
    }

    // R_{S→S}: union of all circuit relations (used for reachability).
    // R_Id: pure circuits whose edges are all injective and that advance
    // dimension d by exactly one, keeping every other dimension — the
    // disjoint paths L_j.
    let step = Map::from_basic(advance_pattern(&space, d, true));
    let mut r_ss: Option<Map> = None;
    let mut r_id: Option<Map> = None;
    for c in &circuits {
        r_ss = Some(match r_ss {
            Some(acc) => acc.union(&c.relation),
            None => c.relation.clone(),
        });
        if !c.pure {
            continue;
        }
        let all_injective = c
            .edges
            .iter()
            .all(|&ei| dfg.edges()[ei].relation.is_injective());
        if !all_injective {
            continue;
        }
        let stepped = c.relation.intersect(&step);
        if stepped.is_empty() {
            continue;
        }
        r_id = Some(match r_id {
            Some(acc) => acc.union(&stepped),
            None => stepped,
        });
    }
    let r_ss = r_ss?;
    let r_id = r_id?
        .intersect_domain(&slice.to_set())
        .intersect_range(&full_domain.to_set());
    if r_id.is_empty() {
        return None;
    }
    notes.push(format!(
        "{} injective circuit disjunct(s) advance dimension {} by one",
        r_id.parts().len(),
        d
    ));

    // R_complete: every (slice point, next-slice point) pair.
    let complete = Map::from_basic(advance_pattern(&space, d, false))
        .intersect_domain(&slice.to_set())
        .intersect_range(&full_domain.to_set());

    // Reachability (under-approximated) and the unreachable target points X.
    let reach = r_ss.reachability_closure_underapprox();
    let dom_rid: Set = r_id.domain();
    let target_points = complete.intersect_domain(&dom_rid).range();
    let reachable = reach.intersect_domain(&dom_rid).range();
    let unreachable = target_points.subtract(&reachable);

    // W: starting points from which the whole next slice is reachable.
    let w: Set = dom_rid.subtract(&r_id.inverse().apply(&unreachable));
    if w.is_empty() {
        return None;
    }
    let w_card = count::card_in(&iolb_poly::EngineCtx::current(), &w, input.ctx)?;
    notes.push(format!("wavefront size |W| = {}", w_card));

    // Q ≥ |W| − S.
    let q_poly = w_card.clone() - Poly::param(input.cache_param);

    // may-spill: W plus the intermediate vertices on the circuits that leave
    // W and re-enter the statement at the next slice (Algorithm 5's
    // `R_{S→*}(W) ∩ R⁻¹_{S→*}(R_Id(W))`). The re-entry slice itself is *not*
    // part of the may-spill set — exactly what makes consecutive slices
    // non-interfering (Fig. 3's "two bottom rows").
    let mut may_spill = UnionSet::empty();
    may_spill.add_set(rename_to(&w, statement));
    for c in &circuits {
        let mut frontier: Set = w.clone();
        // Walk all edges except the last (which lands back in the statement).
        for &ei in c.edges.iter().take(c.edges.len().saturating_sub(1)) {
            let e = &dfg.edges()[ei];
            frontier = Map::from_basic(e.relation.clone()).apply(&frontier);
            if frontier.is_empty() {
                break;
            }
            may_spill.add_set(rename_to(&frontier, &e.dst));
        }
    }

    Some(LowerBound {
        expr: Expr::from_poly(q_poly),
        may_spill,
        technique: Technique::Wavefront,
        statement: statement.to_string(),
        notes,
    })
}

/// Renames the tuple of every disjunct of a set (sets produced by map
/// application keep their space name; may-spill bookkeeping needs the
/// statement name).
fn rename_to(set: &Set, name: &str) -> Set {
    let parts: Vec<BasicSet> = set
        .parts()
        .iter()
        .map(|p| {
            p.with_space(iolb_poly::Space::from_names(
                name.to_string(),
                p.space().dims().to_vec(),
            ))
        })
        .collect();
    if parts.is_empty() {
        return Set::empty(iolb_poly::Space::from_names(
            name.to_string(),
            set.space().dims().to_vec(),
        ));
    }
    let space = parts[0].space().clone();
    Set::from_basic_sets(space, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_dfg::Dfg;

    fn ctx() -> Context {
        Context::empty().assume_ge("N", 4).assume_ge("M", 4)
    }

    /// Example 2 of the paper (Fig. 3): statement S1 accumulates A into a
    /// scalar, statement S2 adds the accumulated value back into every A[i].
    /// S2's values at outer iteration t all feed every S2 instance of
    /// iteration t + 1, creating an N-wide wavefront between slices.
    fn example2() -> Dfg {
        Dfg::builder()
            .statement("S1", "[M, N] -> { S1[t, i] : 0 <= t < M and 0 <= i < N }")
            .statement("S2", "[M, N] -> { S2[t, i] : 0 <= t < M and 0 <= i < N }")
            // A[i] updated at iteration t feeds the accumulation at t+1.
            .edge(
                "S2",
                "S1",
                "[M, N] -> { S2[t, i] -> S1[t2, i2] : t2 = t + 1 and i2 = i and 0 <= t < M - 1 and 0 <= i < N }",
            )
            // The reduction chain within S1.
            .edge(
                "S1",
                "S1",
                "[M, N] -> { S1[t, i] -> S1[t2, i2] : t2 = t and i2 = i + 1 and 0 <= t < M and 0 <= i < N - 1 }",
            )
            // The final accumulated value (i = N-1) broadcasts to every S2 of
            // the same iteration.
            .edge(
                "S1",
                "S2",
                "[M, N] -> { S1[t, i] -> S2[t2, j] : t2 = t and i = N - 1 and 0 <= t < M and 0 <= j < N }",
            )
            // A[i] is also read by the update itself at the next iteration.
            .edge(
                "S2",
                "S2",
                "[M, N] -> { S2[t, i] -> S2[t + 1, i] : 0 <= t < M - 1 and 0 <= i < N }",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn example2_wavefront_is_n_minus_s() {
        let g = example2();
        let slice = iolb_poly::parse_set(
            "[M, N, Omega0] -> { S2[t, i] : t = Omega0 and 0 <= t < M and 0 <= i < N }",
        )
        .unwrap();
        let input = WavefrontInput {
            dfg: &g,
            statement: "S2",
            slice_domain: &slice,
            advance_dim: 0,
            ctx: &ctx(),
            cache_param: "S",
        };
        let bound = wavefront_bound(&input).expect("wavefront bound exists");
        // Per outer iteration the wavefront is the N array values: Q ≥ N − S.
        let lead = iolb_symbol::asymptotic::simplify(&bound.expr, "S");
        assert_eq!(lead.to_string(), "N");
        let v = bound
            .expr
            .eval_params(&[("N", 100), ("M", 10), ("S", 16), ("Omega0", 3)])
            .unwrap();
        assert_eq!(v, 100.0 - 16.0);
        // The may-spill set covers the S2 slice and the next S1 slice, but
        // not the next S2 slice — so consecutive slices do not interfere.
        assert!(crate::decompose::slices_are_disjoint(
            &bound.may_spill,
            "Omega0"
        ));
    }

    #[test]
    fn no_circuits_no_bound() {
        // A pure streaming statement with no reuse circuit has no wavefront.
        let g = Dfg::builder()
            .input("A", "[N] -> { A[i] : 0 <= i < N }")
            .statement("St", "[N] -> { St[i] : 0 <= i < N }")
            .edge(
                "A",
                "St",
                "[N] -> { A[i] -> St[i2] : i2 = i and 0 <= i < N }",
            )
            .build()
            .unwrap();
        let slice =
            iolb_poly::parse_set("[N, Omega0] -> { St[i] : i = Omega0 and 0 <= i < N }").unwrap();
        let input = WavefrontInput {
            dfg: &g,
            statement: "St",
            slice_domain: &slice,
            advance_dim: 0,
            ctx: &ctx(),
            cache_param: "S",
        };
        assert!(wavefront_bound(&input).is_none());
    }

    #[test]
    fn gemm_wavefront_is_the_k_slice() {
        // For gemm the only circuit is the accumulation chain along k; the
        // wavefront between consecutive k-slices is the Ni·Nj accumulators.
        let g = Dfg::builder()
            .statement(
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            )
            .edge(
                "C",
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] -> C[i2, j2, k + 1] : i2 = i and j2 = j and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk - 1 }",
            )
            .build()
            .unwrap();
        let slice = iolb_poly::parse_set(
            "[Ni, Nj, Nk, Omega0] -> { C[i, j, k] : k = Omega0 and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
        )
        .unwrap();
        let input = WavefrontInput {
            dfg: &g,
            statement: "C",
            slice_domain: &slice,
            advance_dim: 2,
            ctx: &Context::empty()
                .assume_ge("Ni", 4)
                .assume_ge("Nj", 4)
                .assume_ge("Nk", 4),
            cache_param: "S",
        };
        let bound = wavefront_bound(&input).expect("accumulation wavefront");
        let lead = iolb_symbol::asymptotic::simplify(&bound.expr, "S");
        assert_eq!(lead.to_string(), "Ni*Nj");
    }

    #[test]
    fn advance_dim_out_of_range() {
        let g = example2();
        let slice = g.node("S2").unwrap().domain.clone();
        let input = WavefrontInput {
            dfg: &g,
            statement: "S2",
            slice_domain: &slice,
            advance_dim: 7,
            ctx: &ctx(),
            cache_param: "S",
        };
        assert!(wavefront_bound(&input).is_none());
    }
}
