//! Operational-intensity bounds derived from an analysis (Sec. 8).
//!
//! `OI_up = #ops / Q_low` upper-bounds the operational intensity of every
//! valid schedule; comparing it with a machine balance `MB` tells whether the
//! computation can ever become compute-bound on that machine.

use crate::driver::Analysis;
use iolb_symbol::{asymptotic, Expr, Poly};
use std::collections::BTreeMap;

/// An operational-intensity summary for one kernel.
#[derive(Clone, Debug)]
pub struct OiSummary {
    /// Symbolic operation count.
    pub ops: Poly,
    /// The complete lower bound `Q_low`.
    pub q_low: Expr,
    /// The asymptotically dominant form `Q∞`.
    pub q_asymptotic: Poly,
    /// The asymptotic upper bound on operational intensity, when the
    /// asymptotic `Q∞` is a single monomial.
    pub oi_up: Option<Poly>,
    /// Name of the cache parameter.
    pub cache_param: String,
}

impl OiSummary {
    /// Builds the summary from an analysis, overriding the operation count
    /// if the kernel provides a more precise one than the DFG-derived count.
    pub fn from_analysis(analysis: &Analysis, ops_override: Option<Poly>) -> Option<OiSummary> {
        let ops = ops_override.or_else(|| analysis.total_ops.clone())?;
        let q_asymptotic = analysis.q_asymptotic();
        let oi_up = asymptotic::asymptotic_ratio(&ops, &analysis.q_low, &analysis.cache_param);
        Some(OiSummary {
            ops,
            q_low: analysis.q_low.clone(),
            q_asymptotic,
            oi_up,
            cache_param: analysis.cache_param.clone(),
        })
    }

    /// Evaluates `OI_up` numerically at a parameter instance (flops/word).
    ///
    /// Falls back to `#ops / Q_low` evaluated numerically when the symbolic
    /// ratio is unavailable.
    pub fn oi_at(&self, params: &[(&str, i128)]) -> Option<f64> {
        let env: BTreeMap<String, f64> = params
            .iter()
            .map(|(k, v)| (k.to_string(), *v as f64))
            .collect();
        let ops = self.ops.eval_f64(&env)?;
        let q = self.q_low.eval_f64(&env)?;
        if q <= 0.0 {
            return None;
        }
        Some(ops / q)
    }

    /// Classifies the kernel against a machine balance `mb` (flops/word) at a
    /// parameter instance: `ComputeBound` if even the achieved OI of a
    /// baseline schedule exceeds `mb`, `BandwidthBound` if even `OI_up` is
    /// below `mb`, `Open` otherwise (Sec. 8.2's three scenarios).
    pub fn classify(&self, achieved_oi: f64, mb: f64, params: &[(&str, i128)]) -> Regime {
        let oi_up = self.oi_at(params).unwrap_or(f64::INFINITY);
        if oi_up < mb {
            Regime::BandwidthBound
        } else if achieved_oi >= mb {
            Regime::ComputeBound
        } else {
            Regime::Open
        }
    }
}

/// The three scenarios of Sec. 8.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// The achieved OI already exceeds the machine balance.
    ComputeBound,
    /// Even the OI upper bound is below the machine balance: no schedule can
    /// make the kernel compute-bound.
    BandwidthBound,
    /// The machine balance falls between the achieved OI and the upper
    /// bound: there may be room for improvement.
    Open,
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regime::ComputeBound => write!(f, "compute-bound"),
            Regime::BandwidthBound => write!(f, "bandwidth-bound"),
            Regime::Open => write!(f, "open"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_math::rat;

    fn summary() -> OiSummary {
        // gemm-like: ops = 2N^3, Q = 3N^2 + max(0, 2N^3/sqrt(S) - 4 sqrt(2 S)).
        let n = Poly::param("N");
        let s = Poly::param("S");
        let ops = Poly::int(2) * n.clone() * n.clone() * n.clone();
        let partition =
            Poly::int(2) * n.clone() * n.clone() * n.clone() * s.pow_rational(rat(-1, 2)).unwrap()
                - Poly::int(4) * s.clone();
        let q_low = Expr::from_poly(Poly::int(3) * n.clone() * n.clone())
            + Expr::from_poly(partition).max_with_zero();
        let q_asymptotic = asymptotic::simplify(&q_low, "S");
        let oi_up = asymptotic::asymptotic_ratio(&ops, &q_low, "S");
        OiSummary {
            ops,
            q_low,
            q_asymptotic,
            oi_up,
            cache_param: "S".to_string(),
        }
    }

    #[test]
    fn symbolic_oi_is_sqrt_s() {
        let s = summary();
        assert_eq!(s.oi_up.unwrap().to_string(), "S^(1/2)");
        assert_eq!(s.q_asymptotic.to_string(), "2*N^3*S^(-1/2)");
    }

    #[test]
    fn numeric_oi_and_classification() {
        let s = summary();
        let params = [("N", 2048i128), ("S", 32768i128)];
        let oi = s.oi_at(&params).unwrap();
        // Close to sqrt(S) ≈ 181 for large N.
        assert!(oi > 100.0 && oi < 200.0, "oi = {oi}");
        assert_eq!(s.classify(30.0, 8.0, &params), Regime::ComputeBound);
        assert_eq!(s.classify(2.0, 8.0, &params), Regime::Open);
        assert_eq!(s.classify(2.0, 1000.0, &params), Regime::BandwidthBound);
    }

    #[test]
    fn oi_is_none_for_zero_q() {
        let s = OiSummary {
            ops: Poly::param("N"),
            q_low: Expr::zero(),
            q_asymptotic: Poly::zero(),
            oi_up: None,
            cache_param: "S".to_string(),
        };
        assert!(s.oi_at(&[("N", 10), ("S", 4)]).is_none());
    }
}
