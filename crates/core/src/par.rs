//! A tiny deterministic fork-join helper.
//!
//! The analysis fans independent work items (per-statement / per-depth
//! candidate derivations, per-kernel suite rows) out over OS threads. The
//! container this project builds in has no third-party crates available, so
//! this is a ~40-line stand-in for `rayon`'s `par_iter().map().collect()`:
//! scoped worker threads pull indices from an atomic counter and write into
//! per-index slots, and results come back **in input order** regardless of
//! which thread finished when — callers observe exactly the same value a
//! serial map would produce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items`, using up to `available_parallelism` worker threads,
/// and returns the results in input order. Falls back to a plain serial map
/// when there is a single item or a single core.
///
/// The caller's **ambient engine session** is propagated into every worker
/// thread, so a parallel map inside an [`iolb_poly::EngineCtx`] scope keeps
/// all polyhedral work (cache, stats, interner) in that session.
///
/// # Panics
///
/// Propagates the first worker panic (like `rayon`'s `par_iter`).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let engine = iolb_poly::EngineCtx::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _session = engine.enter();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let v = f(&items[i]);
                    *slots[i].lock().unwrap() = Some(v);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, |&b| b).is_empty());
        assert_eq!(parallel_map(&[7], |&b: &i32| b + 1), vec![8]);
    }

    #[test]
    fn propagates_the_ambient_session() {
        let session = iolb_poly::EngineCtx::new();
        let items: Vec<u32> = (0..64).collect();
        session.scope(|| {
            let ids = parallel_map(&items, |_| iolb_poly::EngineCtx::current().id());
            assert!(ids.iter().all(|&id| id == session.id()));
        });
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(&items, |&i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
