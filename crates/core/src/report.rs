//! Human-readable reports: the "proof environment" output of IOLB.
//!
//! The paper frames the tool as a proof environment: the output should let a
//! reader review how a bound was derived. [`Report`] collects the analysis
//! result, the accepted sub-bounds with their derivation notes, and the OI
//! summary, and renders them as text.

use crate::driver::Analysis;
use crate::oi::OiSummary;
use std::fmt;

/// Version of the JSON document emitted by [`Report::to_json`] (and by
/// `AnalysisOutcome::to_json`, which extends it). Bump when a field is
/// removed or changes meaning; additions are backwards-compatible.
pub const SCHEMA_VERSION: u32 = 1;

/// A reviewable report for one analysed kernel.
#[derive(Clone, Debug)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// The underlying analysis.
    pub analysis: Analysis,
    /// Operational-intensity summary (when the operation count is known).
    pub oi: Option<OiSummary>,
}

impl Report {
    /// Builds a report from an analysis.
    pub fn new(kernel: &str, analysis: Analysis, ops_override: Option<iolb_symbol::Poly>) -> Self {
        let oi = OiSummary::from_analysis(&analysis, ops_override);
        Report {
            kernel: kernel.to_string(),
            analysis,
            oi,
        }
    }

    /// Serialises the report as a JSON object (hand-rolled — the build
    /// environment is dependency-free). All symbolic expressions are
    /// rendered in their `Display` form; machine consumers that need more
    /// structure should walk the [`Report::analysis`] fields directly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let field = |out: &mut String, key: &str, value: String, last: bool| {
            out.push_str("  ");
            out.push_str(&json_escape(key));
            out.push_str(": ");
            out.push_str(&value);
            out.push_str(if last { "\n" } else { ",\n" });
        };
        field(
            &mut out,
            "schema_version",
            SCHEMA_VERSION.to_string(),
            false,
        );
        field(&mut out, "kernel", json_escape(&self.kernel), false);
        field(
            &mut out,
            "q_low",
            json_escape(&self.analysis.q_low.to_string()),
            false,
        );
        field(
            &mut out,
            "q_asymptotic",
            json_escape(&self.analysis.q_asymptotic().to_string()),
            false,
        );
        field(
            &mut out,
            "input_size",
            json_escape(&self.analysis.input_size.to_string()),
            false,
        );
        field(
            &mut out,
            "cache_param",
            json_escape(&self.analysis.cache_param),
            false,
        );
        let ops = match &self.oi {
            Some(oi) => json_escape(&oi.ops.to_string()),
            None => "null".to_string(),
        };
        field(&mut out, "ops", ops, false);
        let oi_up = match self.oi.as_ref().and_then(|o| o.oi_up.as_ref()) {
            Some(up) => json_escape(&up.to_string()),
            None => "null".to_string(),
        };
        field(&mut out, "oi_up", oi_up, false);
        field(
            &mut out,
            "num_candidates",
            self.analysis.candidates.len().to_string(),
            false,
        );
        out.push_str("  \"accepted_bounds\": [");
        for (i, b) in self.analysis.accepted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"bound\": ");
            out.push_str(&json_escape(&b.to_string()));
            out.push_str(", \"notes\": [");
            for (j, note) in b.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_escape(note));
            }
            out.push_str("] }");
        }
        if !self.analysis.accepted.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// One-line summary: kernel, asymptotic bound, asymptotic OI.
    pub fn summary_line(&self) -> String {
        let q = self.analysis.q_asymptotic();
        let oi = self
            .oi
            .as_ref()
            .and_then(|o| o.oi_up.clone())
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{:<16} Q∞ = {:<28} OI_up = {}",
            self.kernel,
            q.to_string(),
            oi
        )
    }
}

/// Renders a string as a JSON string literal (quotes, backslashes and
/// control characters escaped; other characters pass through as UTF-8,
/// which JSON permits).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel: {}", self.kernel)?;
        writeln!(f, "  Q_low  = {}", self.analysis.q_low)?;
        writeln!(f, "  Q∞     = {}", self.analysis.q_asymptotic())?;
        writeln!(f, "  inputs = {}", self.analysis.input_size)?;
        if let Some(oi) = &self.oi {
            writeln!(f, "  #ops   = {}", oi.ops)?;
            if let Some(up) = &oi.oi_up {
                writeln!(f, "  OI_up  = {}", up)?;
            }
        }
        writeln!(
            f,
            "  accepted sub-bounds: {} (of {} candidates)",
            self.analysis.accepted.len(),
            self.analysis.candidates.len()
        )?;
        for b in &self.analysis.accepted {
            writeln!(f, "    - {}", b)?;
            for note in &b.notes {
                writeln!(f, "        {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{analyze, AnalysisOptions};
    use iolb_dfg::Dfg;

    fn simple() -> Dfg {
        Dfg::builder()
            .input("X", "[N] -> { X[i] : 0 <= i < N }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap()
    }

    #[test]
    fn report_renders() {
        let g = simple();
        let options = AnalysisOptions::with_default_instance(&["N"], 1000, 128);
        let analysis = analyze(&g, &options);
        let report = Report::new("copy", analysis, None);
        let text = report.to_string();
        assert!(text.contains("kernel: copy"));
        assert!(text.contains("Q_low"));
        let line = report.summary_line();
        assert!(line.contains("copy"));
        assert!(line.contains("OI_up"));
    }

    #[test]
    fn report_serialises_to_json() {
        let g = simple();
        let options = AnalysisOptions::with_default_instance(&["N"], 1000, 128);
        let analysis = analyze(&g, &options);
        let report = Report::new("copy", analysis, None);
        let json = report.to_json();
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"kernel\": \"copy\""));
        assert!(json.contains("\"q_low\": \""));
        assert!(json.contains("\"accepted_bounds\": ["));
        // Quotes must be balanced (escaping kept the literal well-formed).
        let unescaped_quotes = json.replace("\\\"", "").matches('"').count();
        assert_eq!(unescaped_quotes % 2, 0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_escape("Q∞"), "\"Q∞\"");
    }
}
