//! Human-readable reports: the "proof environment" output of IOLB.
//!
//! The paper frames the tool as a proof environment: the output should let a
//! reader review how a bound was derived. [`Report`] collects the analysis
//! result, the accepted sub-bounds with their derivation notes, and the OI
//! summary, and renders them as text.

use crate::driver::Analysis;
use crate::oi::OiSummary;
use std::fmt;

/// A reviewable report for one analysed kernel.
#[derive(Clone, Debug)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// The underlying analysis.
    pub analysis: Analysis,
    /// Operational-intensity summary (when the operation count is known).
    pub oi: Option<OiSummary>,
}

impl Report {
    /// Builds a report from an analysis.
    pub fn new(kernel: &str, analysis: Analysis, ops_override: Option<iolb_symbol::Poly>) -> Self {
        let oi = OiSummary::from_analysis(&analysis, ops_override);
        Report {
            kernel: kernel.to_string(),
            analysis,
            oi,
        }
    }

    /// One-line summary: kernel, asymptotic bound, asymptotic OI.
    pub fn summary_line(&self) -> String {
        let q = self.analysis.q_asymptotic();
        let oi = self
            .oi
            .as_ref()
            .and_then(|o| o.oi_up.clone())
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{:<16} Q∞ = {:<28} OI_up = {}",
            self.kernel,
            q.to_string(),
            oi
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel: {}", self.kernel)?;
        writeln!(f, "  Q_low  = {}", self.analysis.q_low)?;
        writeln!(f, "  Q∞     = {}", self.analysis.q_asymptotic())?;
        writeln!(f, "  inputs = {}", self.analysis.input_size)?;
        if let Some(oi) = &self.oi {
            writeln!(f, "  #ops   = {}", oi.ops)?;
            if let Some(up) = &oi.oi_up {
                writeln!(f, "  OI_up  = {}", up)?;
            }
        }
        writeln!(
            f,
            "  accepted sub-bounds: {} (of {} candidates)",
            self.analysis.accepted.len(),
            self.analysis.candidates.len()
        )?;
        for b in &self.analysis.accepted {
            writeln!(f, "    - {}", b)?;
            for note in &b.notes {
                writeln!(f, "        {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{analyze, AnalysisOptions};
    use iolb_dfg::Dfg;

    fn simple() -> Dfg {
        Dfg::builder()
            .input("X", "[N] -> { X[i] : 0 <= i < N }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap()
    }

    #[test]
    fn report_renders() {
        let g = simple();
        let options = AnalysisOptions::with_default_instance(&["N"], 1000, 128);
        let analysis = analyze(&g, &options);
        let report = Report::new("copy", analysis, None);
        let text = report.to_string();
        assert!(text.contains("kernel: copy"));
        assert!(text.contains("Q_low"));
        let line = report.summary_line();
        assert!(line.contains("copy"));
        assert!(line.contains("OI_up"));
    }
}
