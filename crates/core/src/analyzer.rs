//! The [`Analyzer`]: the builder-style, session-scoped entry point of the
//! analysis.
//!
//! Where [`crate::analyze`] is the bare Algorithm-6 kernel (DFG + options in,
//! [`Analysis`] out, engine state taken from the ambient session), the
//! `Analyzer` owns the whole lifecycle of one analysis request, the way a
//! long-running service needs it:
//!
//! 1. it creates (or [reuses](Analyzer::engine)) an engine **session**
//!    ([`EngineCtx`]) with configurable capacities, so concurrent requests
//!    share no cache or statistics;
//! 2. it prepares the [`Workload`] *inside* that session, so every
//!    polyhedral object is bound to it;
//! 3. it derives the [`AnalysisOptions`] — workload-tuned defaults when the
//!    workload carries them, sensible generic defaults otherwise — and
//!    applies the builder's overrides;
//! 4. it runs the driver and packages the result as an
//!    [`AnalysisOutcome`]: the [`Analysis`], the versioned [`Report`], the
//!    per-session engine statistics, and the session itself (keep it to run
//!    follow-up analyses cache-warm).
//!
//! ```
//! use iolb_core::Analyzer;
//! use iolb_dfg::Dfg;
//!
//! let outcome = Analyzer::new()
//!     .cache_capacity(1 << 16)
//!     .parallel(false)
//!     .analyze_with(|| {
//!         Dfg::builder()
//!             .input("X", "[N] -> { X[i] : 0 <= i < N }")
//!             .statement("S", "[N] -> { S[i] : 0 <= i < N }")
//!             .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
//!             .build()
//!             .unwrap()
//!     })
//!     .unwrap();
//! assert_eq!(outcome.analysis().q_asymptotic().to_string(), "N");
//! assert!(outcome.stats.FEASIBILITY_CHECKS > 0);
//! ```

use crate::bound::Instance;
use crate::driver::{analyze_interruptible, Analysis, AnalysisOptions};
use crate::report::Report;
use crate::result_cache::{AnalysisFingerprint, Claim, ResultCache, Tier};
use crate::tightness::{TightnessOptions, TightnessReport};
use crate::workload::{PreparedWorkload, Workload, WorkloadError};
use iolb_poly::{stats::Snapshot, Budget, EngineConfig, EngineCtx, EngineInterrupt};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Domain tag separating analysis fingerprints from every other fingerprint
/// family derived from [`iolb_poly::fxhash`].
const ANALYSIS_FINGERPRINT_TAG: u64 = 0x1016_0cac_4e51_0150;

/// Why [`Analyzer::analyze`] failed to produce any valid bound.
#[derive(Clone, Debug)]
pub enum AnalyzeError {
    /// The workload could not be prepared (file I/O, front-end, lowering).
    Workload(WorkloadError),
    /// The session's [`Budget`] tripped before any valid bound was proven
    /// (during preparation or the compulsory-miss term). Interrupts *after*
    /// that point degrade the outcome instead — see
    /// [`Analysis::degradation`].
    Interrupted(EngineInterrupt),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Workload(e) => e.fmt(f),
            AnalyzeError::Interrupted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<WorkloadError> for AnalyzeError {
    fn from(e: WorkloadError) -> Self {
        AnalyzeError::Workload(e)
    }
}

/// Builder for one analysis request. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Analyzer {
    engine: Option<Arc<EngineCtx>>,
    cache_capacity: Option<usize>,
    cache_enabled: Option<bool>,
    parallel: Option<bool>,
    depth: Option<usize>,
    cache_param: Option<String>,
    cache_size: Option<i128>,
    param_values: Vec<(String, i128)>,
    assumptions: Vec<(String, i128)>,
    assumptions_le: Vec<(String, i128)>,
    options_override: Option<AnalysisOptions>,
    deadline: Option<Duration>,
    budget: Option<Budget>,
    result_cache: Option<Arc<ResultCache>>,
}

impl Analyzer {
    /// A fresh analyzer with default settings (new session per call, tuned
    /// or derived options, parallel driver as the options dictate).
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Runs the analysis in an existing session instead of a fresh one
    /// (reuses its warm cache; required when the workload holds polyhedral
    /// objects built in that session). [`Analyzer::cache_capacity`] cannot
    /// apply retroactively and is ignored for a reused session;
    /// [`Analyzer::cache_enabled`] *is* applied to it.
    pub fn engine(mut self, engine: Arc<EngineCtx>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Total query-cache capacity (entries) for the session this analyzer
    /// creates. The projection store (whose entries are whole constraint
    /// systems) keeps its own default ceiling but never exceeds this budget,
    /// so a capacity of 0 disables memoization entirely. Ignored when
    /// [`Analyzer::engine`] supplies a session.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries);
        self
    }

    /// Enables or disables the session's query cache (default: enabled).
    pub fn cache_enabled(mut self, enabled: bool) -> Self {
        self.cache_enabled = Some(enabled);
        self
    }

    /// Forces the parallel (or serial) driver, overriding the workload's
    /// tuned options.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Maximum loop-parametrization depth, overriding the tuned options.
    pub fn max_parametrization_depth(mut self, depth: usize) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Renames the fast-memory capacity parameter (default `"S"`). The
    /// heuristic instances are re-keyed accordingly.
    pub fn cache_param(mut self, name: impl Into<String>) -> Self {
        self.cache_param = Some(name.into());
        self
    }

    /// Fast-memory capacity (in words) for the heuristic instances.
    pub fn cache_size(mut self, words: i128) -> Self {
        self.cache_size = Some(words);
        self
    }

    /// Sets a program-parameter value on the heuristic instances (Sec. 7.2).
    pub fn param(mut self, name: impl Into<String>, value: i128) -> Self {
        self.param_values.push((name.into(), value));
        self
    }

    /// Adds a context assumption `name ≥ value` for symbolic counting.
    pub fn assume_ge(mut self, name: impl Into<String>, value: i128) -> Self {
        self.assumptions.push((name.into(), value));
        self
    }

    /// Adds a context assumption `name ≤ value` for symbolic counting.
    /// Combined with [`Analyzer::assume_ge`] this can pin a parameter to a
    /// range — or make the context infeasible, which the preflight pass
    /// reports as a `contradictory-assumptions` error.
    pub fn assume_le(mut self, name: impl Into<String>, value: i128) -> Self {
        self.assumptions_le.push((name.into(), value));
        self
    }

    /// Replaces the derived options wholesale (advanced; the other builder
    /// knobs still apply on top). **Session binding applies** to the
    /// options' context constraints — build them in the session given to
    /// [`Analyzer::engine`], or prefer the plain-data knobs.
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options_override = Some(options);
        self
    }

    /// Wall-clock budget for the whole request (preparation + analysis),
    /// measured from the moment [`Analyzer::analyze`] is called. A tripped
    /// deadline degrades the outcome (see [`Analysis::degradation`]) or, if
    /// no valid bound exists yet, fails with
    /// [`AnalyzeError::Interrupted`]. Composes with [`Analyzer::budget`]
    /// (the deadline set here wins).
    pub fn deadline(mut self, within: Duration) -> Self {
        self.deadline = Some(within);
        self
    }

    /// Full per-request [`Budget`] (deadline, FM-step / constraint /
    /// cache-entry limits, external [`CancelToken`](iolb_poly::CancelToken)),
    /// installed on the session for the duration of the request and cleared
    /// afterwards.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Serves repeats through a content-addressed result cache: see
    /// [`Analyzer::analyze_cached`]. The plain [`Analyzer::analyze`] path
    /// ignores the cache entirely.
    pub fn result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.result_cache = Some(cache);
        self
    }

    /// The **analysis fingerprint** of this request: a 128-bit content
    /// address over everything that determines the serialized report —
    /// the workload's canonical key ([`Workload::cache_key`]), the
    /// result-shaping builder knobs (depth, cache parameter and size,
    /// params folded last-wins, assumptions as a sorted set), the report
    /// [`SCHEMA_VERSION`](crate::report::SCHEMA_VERSION) and the engine
    /// version. Equal fingerprints promise byte-identical reports.
    ///
    /// Deliberately **excluded**, because they cannot change the bytes of a
    /// cacheable report: `parallel` (the parallel driver is byte-equivalent
    /// to the serial one by construction — pinned by the engine-equivalence
    /// suite), the session query-cache knobs (memoization is
    /// result-invariant), and deadlines/budgets (degraded results are never
    /// cached, so a budgeted and an un-budgeted request may share an
    /// entry).
    ///
    /// `None` — the request is uncacheable — when the workload has no
    /// canonical key or when [`Analyzer::options`] replaced the derived
    /// options wholesale (explicit options carry session-bound context).
    pub fn fingerprint<W: Workload + ?Sized>(&self, workload: &W) -> Option<AnalysisFingerprint> {
        if self.options_override.is_some() {
            return None;
        }
        let key = workload.cache_key()?;
        let mut fp = iolb_poly::fxhash::Fingerprint::new(ANALYSIS_FINGERPRINT_TAG);
        fp.add(&crate::report::SCHEMA_VERSION);
        fp.add(&env!("CARGO_PKG_VERSION"));
        fp.add(&key);
        fp.add(&self.depth);
        fp.add(&self.cache_param);
        fp.add(&self.cache_size);
        // Canonicalize: repeated `.param()` calls fold last-wins (that is
        // how `resolve_options` applies them), and assumption order is
        // irrelevant (conjunction), so both hash as sorted collections.
        let params: std::collections::BTreeMap<&str, i128> = self
            .param_values
            .iter()
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        fp.add(&params);
        let assumptions: std::collections::BTreeSet<(&str, i128)> = self
            .assumptions
            .iter()
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        fp.add(&assumptions);
        let assumptions_le: std::collections::BTreeSet<(&str, i128)> = self
            .assumptions_le
            .iter()
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        fp.add(&assumptions_le);
        Some(AnalysisFingerprint::from_raw(fp.finish()))
    }

    /// Like [`Analyzer::analyze`], but consults the configured
    /// [result cache](Analyzer::result_cache) first. A cached reply carries
    /// the exact serialized document of the run that produced it —
    /// byte-identical to computing fresh. Concurrent identical requests
    /// coalesce into one computation (singleflight). Degraded or
    /// interrupted outcomes are never stored; a failed or degraded leader
    /// hands its waiters back to the claim loop so a later, un-budgeted
    /// request recomputes in full.
    pub fn analyze_cached<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> Result<AnalysisReply, AnalyzeError> {
        let Some(cache) = &self.result_cache else {
            return Ok(AnalysisReply::Computed {
                outcome: Box::new(self.analyze(workload)?),
                fingerprint: None,
            });
        };
        let Some(fingerprint) = self.fingerprint(workload) else {
            return Ok(AnalysisReply::Computed {
                outcome: Box::new(self.analyze(workload)?),
                fingerprint: None,
            });
        };
        match cache.claim(fingerprint) {
            Claim::Hit(hit) => Ok(AnalysisReply::Cached {
                json: hit.json,
                fingerprint,
                tier: hit.tier,
                coalesced: false,
            }),
            Claim::Coalesced(hit) => Ok(AnalysisReply::Cached {
                json: hit.json,
                fingerprint,
                tier: hit.tier,
                coalesced: true,
            }),
            Claim::Leader(guard) => {
                // An error or panic drops the guard, which wakes the
                // waiters empty-handed — nothing is ever cached on those
                // paths.
                let outcome = self.analyze(workload)?;
                if outcome.analysis().degradation.is_none() {
                    guard.publish(Arc::new(outcome.to_json()));
                } else {
                    drop(guard);
                }
                Ok(AnalysisReply::Computed {
                    outcome: Box::new(outcome),
                    fingerprint: Some(fingerprint),
                })
            }
        }
    }

    /// Generic defaults for a user program over `params`: every parameter
    /// is assumed `≥ 8` and the heuristic instance sets it to 2000 (the
    /// order of magnitude of the PolyBench LARGE datasets, so non-trivial
    /// sub-bounds survive the Sec. 7.2 combination heuristics) with a
    /// 32768-word fast memory (256 kB of doubles).
    pub fn default_options_for(params: &[String]) -> AnalysisOptions {
        let mut options = AnalysisOptions {
            max_parametrization_depth: 0,
            ..AnalysisOptions::default()
        };
        let mut ctx = iolb_poly::Context::empty();
        let mut instance = Instance::new().set(&options.cache_param, 32_768);
        for p in params {
            ctx = ctx.assume_ge(p, 8);
            instance = instance.set(p, 2000);
        }
        options.ctx = ctx;
        options.instances = vec![instance];
        options
    }

    /// Analyses a workload: prepares it inside the session, resolves the
    /// options, runs the driver, and packages the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Workload`] when [`Workload::prepare`] fails
    /// (file I/O, front-end, lowering, …), and [`AnalyzeError::Interrupted`]
    /// when a configured [budget](Analyzer::budget) /
    /// [deadline](Analyzer::deadline) trips before any valid bound exists.
    /// A budget tripping mid-analysis is **not** an error: the outcome is
    /// returned with [`Analysis::degradation`] set.
    pub fn analyze<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        self.analyze_inner(workload, None)
    }

    /// Like [`Analyzer::analyze`], but additionally runs the two-sided
    /// tightness pass (see [`crate::tightness`]): the workload's DFG is
    /// walked at each requested instance, the trace is simulated through the
    /// LRU (and optionally Belady) cache model, and the outcome carries a
    /// [`TightnessReport`] comparing measured misses against `Q_low`.
    ///
    /// Trace generation honours the request's
    /// [budget](Analyzer::budget)/[deadline](Analyzer::deadline) and the
    /// options' trace-length budget: an oversized instance degrades to a
    /// skipped report entry instead of hanging the request. This path never
    /// consults the [result cache](Analyzer::result_cache) — the plain
    /// report's bytes (and its cache entries) stay unchanged.
    pub fn analyze_with_tightness<W: Workload + ?Sized>(
        &self,
        workload: &W,
        options: &TightnessOptions,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        self.analyze_inner(workload, Some(options))
    }

    /// Convenience wrapper: [`Analyzer::analyze_with_tightness`] with
    /// default options (one auto-derived small instance, the default cache
    /// size, LRU only).
    pub fn simulate<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        self.analyze_with_tightness(workload, &TightnessOptions::default())
    }

    fn analyze_inner<W: Workload + ?Sized>(
        &self,
        workload: &W,
        tightness_options: Option<&TightnessOptions>,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        let engine = match &self.engine {
            Some(engine) => {
                if let Some(enabled) = self.cache_enabled {
                    engine.set_cache_enabled(enabled);
                }
                engine.clone()
            }
            None => {
                let defaults = EngineConfig::default();
                let cache_capacity = self.cache_capacity.unwrap_or(defaults.cache_capacity);
                EngineCtx::with_config(EngineConfig {
                    cache_capacity,
                    // The user-facing budget bounds the projection store too:
                    // capacity 0 must disable memoization entirely.
                    projection_cache_capacity: defaults
                        .projection_cache_capacity
                        .min(cache_capacity),
                    cache_enabled: self.cache_enabled.unwrap_or(true),
                    ..defaults
                })
            }
        };
        // The request's budget lives on the session only while this call
        // runs (the relative deadline becomes absolute here, at admission).
        let mut budget = self.budget.clone().unwrap_or_default();
        if let Some(within) = self.deadline {
            budget = budget.deadline_in(within);
        }
        engine.install_budget(budget);
        let result = engine.clone().scope(|| {
            let stats_before = engine.stats();
            // Preparation runs engine queries too (parsing, DFG lowering),
            // so it can trip the budget — before any bound exists, hence
            // the hard-error path.
            let prepared = EngineInterrupt::catch(|| workload.prepare())
                .map_err(AnalyzeError::Interrupted)??;
            let options = self.resolve_options(&prepared);
            // The static preflight pass: microseconds of structural
            // profiling and diagnostics before the driver starts. It runs
            // engine queries (emptiness, translation detection), so it is
            // budget-aware like preparation.
            let preflight = EngineInterrupt::catch(|| {
                iolb_preflight::preflight(
                    &prepared.name,
                    &prepared.dfg,
                    &prepared.params,
                    &options.ctx,
                    options.max_parametrization_depth,
                    prepared.source.as_ref(),
                )
            })
            .map_err(AnalyzeError::Interrupted)?;
            let start = Instant::now();
            let analysis = analyze_interruptible(&prepared.dfg, &options)
                .map_err(AnalyzeError::Interrupted)?;
            let elapsed = start.elapsed();
            // The tightness pass runs inside the same budget scope: a
            // deadline tripping mid-walk degrades the affected instances to
            // skipped entries (handled inside `measure`), never the request.
            let tightness = tightness_options.map(|topts| {
                crate::tightness::measure(&prepared.dfg, &analysis, &prepared.params, topts)
            });
            let report = Report::new(&prepared.name, analysis, prepared.ops);
            Ok(AnalysisOutcome {
                report,
                preflight,
                stats: engine.stats().delta_since(&stats_before),
                cache_entries: engine.cache_len(),
                elapsed,
                tightness,
                engine: engine.clone(),
            })
        });
        engine.clear_budget();
        result
    }

    /// Runs **only** the static preflight pass: prepares the workload,
    /// resolves the options it would be analysed under, and returns the
    /// structural profile, diagnostics and predicted cost class — without
    /// touching the Fourier–Motzkin machinery. This is the `iolb check`
    /// path and the server's request classifier; it completes in
    /// microseconds for built-in kernels and small multiples of the
    /// compile time for source workloads.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Workload`] when [`Workload::prepare`] fails
    /// (the diagnostics of a program that does not compile are its
    /// front-end errors).
    pub fn preflight<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> Result<iolb_preflight::PreflightReport, AnalyzeError> {
        let engine = match &self.engine {
            Some(engine) => engine.clone(),
            None => EngineCtx::new(),
        };
        engine.scope(|| {
            let prepared = workload.prepare()?;
            let options = self.resolve_options(&prepared);
            Ok(iolb_preflight::preflight(
                &prepared.name,
                &prepared.dfg,
                &prepared.params,
                &options.ctx,
                options.max_parametrization_depth,
                prepared.source.as_ref(),
            ))
        })
    }

    /// Analyses a DFG built **inside** the analysis session by `build` —
    /// the safe way to analyse hand-assembled DFGs without managing the
    /// session yourself.
    pub fn analyze_with(
        &self,
        build: impl FnOnce() -> iolb_dfg::Dfg,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        struct Builder<F>(std::cell::RefCell<Option<F>>);
        impl<F: FnOnce() -> iolb_dfg::Dfg> Workload for Builder<F> {
            fn prepare(&self) -> Result<PreparedWorkload, WorkloadError> {
                let build = self
                    .0
                    .borrow_mut()
                    .take()
                    .ok_or_else(|| WorkloadError::new("DFG builder already consumed"))?;
                build().prepare()
            }
        }
        self.analyze(&Builder(std::cell::RefCell::new(Some(build))))
    }

    /// Applies defaults and builder overrides to produce the final options.
    fn resolve_options(&self, prepared: &PreparedWorkload) -> AnalysisOptions {
        let mut options = match (&self.options_override, &prepared.options) {
            (Some(explicit), _) => explicit.clone(),
            (None, Some(tuned)) => tuned.clone(),
            (None, None) => Analyzer::default_options_for(&prepared.params),
        };
        if let Some(depth) = self.depth {
            options.max_parametrization_depth = depth;
        }
        if let Some(parallel) = self.parallel {
            options.parallel = parallel;
        }
        if let Some(cache_param) = &self.cache_param {
            let old = options.cache_param.clone();
            options.instances = options
                .instances
                .into_iter()
                .map(|inst| inst.rename(&old, cache_param))
                .collect();
            options.cache_param = cache_param.clone();
        }
        if self.cache_size.is_some() || !self.param_values.is_empty() {
            options.instances = options
                .instances
                .into_iter()
                .map(|mut inst| {
                    if let Some(s) = self.cache_size {
                        inst = inst.set(&options.cache_param, s);
                    }
                    for (name, value) in &self.param_values {
                        inst = inst.set(name, *value);
                    }
                    inst
                })
                .collect();
        }
        for (name, value) in &self.assumptions {
            options.ctx = options.ctx.clone().assume_ge(name, *value);
        }
        for (name, value) in &self.assumptions_le {
            options.ctx = options.ctx.clone().assume_le(name, *value);
        }
        options
    }
}

/// Everything one analysis request produced: the analysis, the versioned
/// report, the per-session engine statistics, and the session itself.
pub struct AnalysisOutcome {
    /// The reviewable report (text via `Display`, versioned JSON via
    /// [`Report::to_json`]); owns the [`Analysis`].
    pub report: Report,
    /// The static preflight pass: structural profile, diagnostics and the
    /// predicted cost class (see [`iolb_preflight`]).
    pub preflight: iolb_preflight::PreflightReport,
    /// Engine-operation counters for **this request only**: a delta over
    /// the session's counters, so neither concurrent analyses in other
    /// sessions nor earlier runs in a reused session inflate these numbers.
    pub stats: Snapshot,
    /// Memoized query results resident in the session after the run.
    pub cache_entries: usize,
    /// Wall-clock time of the driver run (excludes workload preparation).
    pub elapsed: Duration,
    /// The two-sided locality report, when the request ran through
    /// [`Analyzer::analyze_with_tightness`] / [`Analyzer::simulate`]
    /// (`None` on the plain path, whose report bytes stay unchanged).
    pub tightness: Option<TightnessReport>,
    engine: Arc<EngineCtx>,
}

impl AnalysisOutcome {
    /// The underlying analysis (bounds, candidates, `Q_low`).
    pub fn analysis(&self) -> &Analysis {
        &self.report.analysis
    }

    /// The session the analysis ran in. Pass it to [`Analyzer::engine`] to
    /// run follow-up analyses against the warm cache, or drop the outcome
    /// to free all engine state.
    pub fn engine(&self) -> &Arc<EngineCtx> {
        &self.engine
    }

    /// The versioned JSON document for machine consumers: every
    /// [`Report::to_json`] field (including `schema_version`) plus an
    /// `engine_stats` object with the per-session counters, cache hit
    /// rates, resident entry count and wall-clock.
    pub fn to_json(&self) -> String {
        let report = self.report.to_json();
        // Splice the engine_stats object in before the closing brace.
        let body = report
            .trim_end()
            .strip_suffix('}')
            .expect("report JSON object")
            .trim_end()
            .to_string();
        let mut out = body;
        out.push_str(",\n  \"engine_stats\": {\n");
        for (key, value) in self.stats.as_pairs() {
            out.push_str(&format!("    \"{}\": {},\n", key.to_lowercase(), value));
        }
        for (key, value) in self.stats.hit_rates() {
            match value {
                Some(rate) => out.push_str(&format!("    \"{key}\": {rate:.6},\n")),
                // No query of this kind ran: `null`, never NaN (see
                // `Snapshot::hit_rates`).
                None => out.push_str(&format!("    \"{key}\": null,\n")),
            }
        }
        out.push_str(&format!("    \"cache_entries\": {},\n", self.cache_entries));
        out.push_str(&format!(
            "    \"wall_clock_seconds\": {:.6}\n",
            self.elapsed.as_secs_f64()
        ));
        out.push_str("  }");
        out.push_str(&format!(",\n  \"preflight\": {}", self.preflight.to_json()));
        // The tightness block is only present on the simulate path, so plain
        // analysis reports (and their result-cache entries) keep their exact
        // bytes.
        if let Some(tightness) = &self.tightness {
            out.push_str(&format!(",\n  \"tightness\": {}", tightness.to_json()));
        }
        // Degradation fields are only emitted when a budget tripped, so
        // un-budgeted reports stay byte-identical to earlier versions.
        if let Some(degradation) = &self.analysis().degradation {
            out.push_str(",\n  \"degraded\": true,\n  \"budget\": {\n");
            out.push_str(&format!(
                "    \"tripped\": \"{}\",\n",
                degradation.interrupt.code()
            ));
            out.push_str(&format!(
                "    \"sweep_completed\": {},\n    \"sweep_total\": {}\n  }}",
                degradation.sweep_completed, degradation.sweep_total
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

/// What [`Analyzer::analyze_cached`] produced: a fresh computation (with
/// the live [`AnalysisOutcome`]) or a cached document.
pub enum AnalysisReply {
    /// Computed in this request. `fingerprint` is `Some` when the request
    /// was cacheable (and, for clean results, the document is now stored).
    Computed {
        /// The live outcome (boxed: an `AnalysisOutcome` is large, and the
        /// `Cached` variant is two words).
        outcome: Box<AnalysisOutcome>,
        /// The request's content address, when cacheable.
        fingerprint: Option<AnalysisFingerprint>,
    },
    /// Served from the result cache (or a coalesced leader computation):
    /// the exact serialized document of the producing run.
    Cached {
        /// The cached `AnalysisOutcome::to_json` document.
        json: Arc<String>,
        /// The request's content address.
        fingerprint: AnalysisFingerprint,
        /// Which tier served it.
        tier: Tier,
        /// Whether this request waited on a concurrent leader
        /// (singleflight) rather than reading a stored entry.
        coalesced: bool,
    },
}

impl AnalysisReply {
    /// Whether the reply was served without computing.
    pub fn cached(&self) -> bool {
        matches!(self, AnalysisReply::Cached { .. })
    }

    /// The request's content address, when it was cacheable.
    pub fn fingerprint(&self) -> Option<AnalysisFingerprint> {
        match self {
            AnalysisReply::Computed { fingerprint, .. } => *fingerprint,
            AnalysisReply::Cached { fingerprint, .. } => Some(*fingerprint),
        }
    }

    /// The live outcome, for freshly computed replies.
    pub fn outcome(&self) -> Option<&AnalysisOutcome> {
        match self {
            AnalysisReply::Computed { outcome, .. } => Some(outcome.as_ref()),
            AnalysisReply::Cached { .. } => None,
        }
    }

    /// The serialized JSON document — byte-identical whether computed or
    /// cached.
    pub fn to_json(&self) -> String {
        match self {
            AnalysisReply::Computed { outcome, .. } => outcome.to_json(),
            AnalysisReply::Cached { json, .. } => (**json).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_dfg() -> iolb_dfg::Dfg {
        iolb_dfg::Dfg::builder()
            .input("X", "[N] -> { X[i] : 0 <= i < N }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap()
    }

    /// The built-in gemm DFG as a session-rebuilding workload. (The `Kernel`
    /// type itself implements the *other* build of this crate in the
    /// dev-dependency cycle, so unit tests go through the DFG.)
    struct GemmDfg;
    impl Workload for GemmDfg {
        fn prepare(&self) -> Result<PreparedWorkload, WorkloadError> {
            iolb_polybench::kernel_by_name("gemm")
                .unwrap()
                .dfg
                .prepare()
        }
    }

    #[test]
    fn builder_analyzes_and_reports_session_stats() {
        let outcome = Analyzer::new()
            .parallel(false)
            .analyze_with(streaming_dfg)
            .unwrap();
        assert_eq!(outcome.analysis().q_asymptotic().to_string(), "N");
        assert!(outcome.stats.FEASIBILITY_CHECKS > 0);
        assert_eq!(outcome.report.kernel, "program");
        let json = outcome.to_json();
        assert!(json.contains("\"engine_stats\""), "{json}");
        assert!(json.contains("\"schema_version\""), "{json}");
    }

    #[test]
    fn sessions_are_reusable_and_warm() {
        let first = Analyzer::new().analyze_with(streaming_dfg).unwrap();
        let engine = first.engine().clone();
        let second = Analyzer::new()
            .engine(engine.clone())
            .analyze_with(streaming_dfg)
            .unwrap();
        // Same session: the second run starts where the first left off and
        // answers repeated queries from the warm cache. (Not compared against
        // the first run's hit count: the memoized recursive kernel records
        // within-run hits on the cold run, while the warm run's top-level
        // hits short-circuit the recursion entirely.)
        assert!(second.stats.FEASIBILITY_CACHE_HITS > 0);
        assert_eq!(
            second.stats.FM_ELIMINATIONS, 0,
            "a fully warm run must not recompute any elimination"
        );
        assert_eq!(
            first.analysis().q_low.to_string(),
            second.analysis().q_low.to_string()
        );
    }

    #[test]
    fn cache_capacity_and_toggle_reach_the_session() {
        let outcome = Analyzer::new()
            .cache_capacity(0)
            .analyze_with(streaming_dfg)
            .unwrap();
        assert_eq!(outcome.cache_entries, 0);
        let uncached = Analyzer::new()
            .cache_enabled(false)
            .analyze_with(streaming_dfg)
            .unwrap();
        assert_eq!(uncached.cache_entries, 0);
        assert_eq!(uncached.stats.FEASIBILITY_CACHE_HITS, 0);
        assert_eq!(
            outcome.analysis().q_low.to_string(),
            uncached.analysis().q_low.to_string(),
            "cache configuration must never change the result"
        );
    }

    #[test]
    fn zero_query_hit_rates_serialise_as_null() {
        // Regression: a request whose session saw zero queries of some kind
        // (disabled cache, idle session) must emit `null` hit rates — a 0/0
        // division would put `NaN`, which is not valid JSON, in the report.
        let outcome = Analyzer::new()
            .parallel(false)
            .analyze_with(streaming_dfg)
            .unwrap();
        let idle = AnalysisOutcome {
            report: outcome.report.clone(),
            preflight: outcome.preflight.clone(),
            stats: Snapshot::default(),
            cache_entries: 0,
            elapsed: Duration::ZERO,
            tightness: None,
            engine: outcome.engine.clone(),
        };
        let json = idle.to_json();
        assert!(json.contains("\"feasibility_hit_rate\": null"), "{json}");
        assert!(json.contains("\"count_hit_rate\": null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn expired_deadline_is_a_typed_interrupt_error() {
        let result = Analyzer::new()
            .parallel(false)
            .deadline(Duration::ZERO)
            .analyze_with(streaming_dfg);
        match result {
            Err(AnalyzeError::Interrupted(interrupt)) => {
                assert_eq!(interrupt.code(), "deadline")
            }
            Err(other) => panic!("expected a deadline interrupt, got {other:?}"),
            Ok(_) => panic!("expected a deadline interrupt, got a result"),
        }
    }

    #[test]
    fn generous_budget_never_trips_and_changes_nothing() {
        let plain = Analyzer::new()
            .parallel(false)
            .analyze_with(streaming_dfg)
            .unwrap();
        let budgeted = Analyzer::new()
            .parallel(false)
            .deadline(Duration::from_secs(3600))
            .budget(
                iolb_poly::Budget::none()
                    .max_fm_steps(u64::MAX)
                    .cancel_token(iolb_poly::CancelToken::new()),
            )
            .analyze_with(streaming_dfg)
            .unwrap();
        assert_eq!(
            plain.analysis().q_low.to_string(),
            budgeted.analysis().q_low.to_string(),
            "a budget that never trips must not change the result"
        );
        assert!(budgeted.analysis().degradation.is_none());
        assert!(
            !budgeted.engine().budget_active(),
            "the request budget is cleared from the session afterwards"
        );
        assert!(!budgeted.to_json().contains("\"degraded\""));
    }

    #[test]
    fn degraded_outcomes_serialise_budget_fields() {
        let outcome = Analyzer::new()
            .parallel(false)
            .analyze_with(streaming_dfg)
            .unwrap();
        let mut report = outcome.report.clone();
        report.analysis.degradation = Some(crate::driver::Degradation {
            interrupt: EngineInterrupt::Deadline,
            sweep_completed: 1,
            sweep_total: 3,
        });
        let degraded = AnalysisOutcome {
            report,
            preflight: outcome.preflight.clone(),
            stats: outcome.stats,
            cache_entries: outcome.cache_entries,
            elapsed: outcome.elapsed,
            tightness: None,
            engine: outcome.engine.clone(),
        };
        let json = degraded.to_json();
        assert!(json.contains("\"degraded\": true"), "{json}");
        assert!(json.contains("\"tripped\": \"deadline\""), "{json}");
        assert!(json.contains("\"sweep_completed\": 1"), "{json}");
        assert!(json.contains("\"sweep_total\": 3"), "{json}");
    }

    #[test]
    fn simulate_attaches_a_sound_tightness_report() {
        let outcome = Analyzer::new().parallel(false).simulate(&GemmDfg).unwrap();
        let tightness = outcome.tightness.as_ref().expect("simulate ran");
        assert_eq!(tightness.instances.len(), 1, "one auto-derived instance");
        let inst = &tightness.instances[0];
        assert!(inst.skipped.is_none(), "{:?}", inst.skipped);
        assert!(inst.trace_len > 0);
        let point = &inst.caches[0];
        assert!(point.lru.misses >= inst.distinct_addresses);
        let q_low = point.q_low.expect("q_low evaluates");
        assert!(
            q_low <= point.lru.misses as f64,
            "soundness: Q_low = {q_low} must not exceed measured misses {}",
            point.lru.misses
        );
        let ratio = point.tightness_lru().unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio = {ratio}");
        let json = outcome.to_json();
        assert!(json.contains("\"tightness\""), "{json}");
        assert!(json.contains("\"lru_misses\""), "{json}");
    }

    #[test]
    fn plain_analysis_reports_carry_no_tightness_block() {
        let outcome = Analyzer::new().parallel(false).analyze(&GemmDfg).unwrap();
        assert!(outcome.tightness.is_none());
        assert!(!outcome.to_json().contains("\"tightness\""));
    }

    #[test]
    fn expired_deadline_degrades_tightness_to_skipped_entries() {
        // The analysis itself survives a mid-request trip (degradation), and
        // the tightness pass must mark its instances skipped rather than
        // erroring out — but with a zero deadline the request fails before
        // any bound exists, so drive the skip through an oversized instance
        // instead: the walk degrades, the analysis stands.
        let options = TightnessOptions::default()
            .instance(Instance::new().set("Ni", 1 << 30).set("Nj", 4).set("Nk", 4));
        let outcome = Analyzer::new()
            .parallel(false)
            .analyze_with_tightness(&GemmDfg, &options)
            .unwrap();
        let tightness = outcome.tightness.as_ref().unwrap();
        assert_eq!(tightness.instances.len(), 1);
        assert!(tightness.instances[0].skipped.is_some());
        assert!(tightness.instances[0].caches.is_empty());
        assert!(outcome.analysis().degradation.is_none());
        assert!(outcome.to_json().contains("\"skipped\": \""));
    }

    #[test]
    fn cache_param_override_rekeys_instances() {
        let options = AnalysisOptions {
            cache_param: "Cap".to_string(),
            ..AnalysisOptions::default()
        }
        .with_instance_defaults(&["N"], 100, 64);
        // The satellite fix: the instance key follows cache_param.
        assert_eq!(options.instances[0].get("Cap"), Some(64));
        assert_eq!(options.instances[0].get("S"), None);

        // And the Analyzer's own override re-keys tuned instances.
        let outcome = Analyzer::new()
            .cache_param("Cap")
            .cache_size(128)
            .analyze_with(streaming_dfg)
            .unwrap();
        assert_eq!(outcome.analysis().cache_param, "Cap");
    }
}
