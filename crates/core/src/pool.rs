//! A bounded pool of warm engine sessions for serving workloads.
//!
//! Creating an [`EngineCtx`] is cheap, but a *warm* one — interner table
//! populated, query cache holding memoized feasibility/entailment/counting
//! results from earlier requests — makes follow-up analyses substantially
//! faster (memoized answers are result-identical by construction, so reuse
//! never changes a bound). A long-running service therefore wants to keep a
//! few sessions around between requests instead of building every request a
//! cold one. [`SessionPool`] is that keep-around policy:
//!
//! * **Keyed by configuration fingerprint.** Capacities are fixed at session
//!   creation ([`EngineConfig`] cannot be re-applied to a live session), so
//!   a pooled session may only serve a request that asked for the same
//!   configuration. [`SessionPool::checkout`] matches on
//!   [`EngineConfig::fingerprint`] and creates a fresh session on a miss.
//! * **Bounded, LRU-evicted.** At most `capacity` idle sessions are
//!   retained across all fingerprints together; returning a session to a
//!   full pool evicts the least-recently-used idle one. Sessions in flight
//!   (checked out) are not counted — the *service* bounds concurrency via
//!   its worker pool.
//! * **Recycling.** [`SessionPool::checkin`] runs
//!   [`EngineCtx::recycle`](iolb_poly::EngineCtx::recycle), which resets the
//!   per-request counters and retires sessions whose interner is nearly
//!   full; retired sessions are dropped, not pooled.
//!
//! The pool is internally synchronised: `&SessionPool` is enough for every
//! operation, so one pool can be shared by all worker threads of a server.
//!
//! ```
//! use iolb_core::pool::SessionPool;
//! use iolb_poly::EngineConfig;
//!
//! let pool = SessionPool::new(4);
//! let config = EngineConfig::default();
//! let first = pool.checkout(&config);
//! assert!(!first.warm, "nothing pooled yet: a fresh session");
//! pool.checkin(first.engine);
//! let second = pool.checkout(&config);
//! assert!(second.warm, "the recycled session comes back");
//! ```

use iolb_poly::{EngineConfig, EngineCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One idle session retained by the pool.
struct Slot {
    engine: Arc<EngineCtx>,
    fingerprint: u64,
    /// Logical timestamp of the last checkin (monotonic pool clock); the
    /// smallest value is the LRU eviction victim.
    last_used: u64,
}

/// Counters describing what the pool has done so far (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by a warm pooled session.
    pub hits: u64,
    /// Checkouts that had to create a fresh session.
    pub misses: u64,
    /// Idle sessions evicted to make room (LRU order).
    pub evictions: u64,
    /// Sessions dropped at checkin because
    /// [`EngineCtx::recycle`](iolb_poly::EngineCtx::recycle) retired them.
    pub retired: u64,
}

/// A checked-out session plus how it was obtained.
pub struct Checkout {
    /// The session, ready to be passed to
    /// [`Analyzer::engine`](crate::Analyzer::engine).
    pub engine: Arc<EngineCtx>,
    /// `true` when the session came warm from the pool, `false` when it was
    /// created for this checkout.
    pub warm: bool,
}

/// A bounded, fingerprint-keyed, LRU-evicted pool of warm [`EngineCtx`]
/// sessions. See the [module docs](self).
pub struct SessionPool {
    capacity: usize,
    slots: Mutex<Vec<Slot>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retired: AtomicU64,
}

impl SessionPool {
    /// A pool retaining at most `capacity` idle sessions (0 disables
    /// retention entirely: every checkout is a miss, every checkin a drop).
    pub fn new(capacity: usize) -> Self {
        SessionPool {
            capacity,
            slots: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }

    /// The maximum number of idle sessions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of idle sessions currently retained.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// True when no idle session is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a session configured like `config` out of the pool, creating a
    /// fresh one on a miss. Among several matching idle sessions the
    /// most-recently-used one is preferred (it is the warmest).
    pub fn checkout(&self, config: &EngineConfig) -> Checkout {
        let fingerprint = config.fingerprint();
        let pooled = {
            let mut slots = self.slots.lock().unwrap();
            let best = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.fingerprint == fingerprint)
                .max_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            best.map(|i| slots.swap_remove(i).engine)
        };
        match pooled {
            Some(engine) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Checkout { engine, warm: true }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Checkout {
                    engine: EngineCtx::with_config(config.clone()),
                    warm: false,
                }
            }
        }
    }

    /// Returns a session to the pool after a request. The session is
    /// recycled ([`EngineCtx::recycle`](iolb_poly::EngineCtx::recycle));
    /// retired sessions are dropped, and if the pool is full the
    /// least-recently-used idle session is evicted to make room.
    pub fn checkin(&self, engine: Arc<EngineCtx>) {
        if self.capacity == 0 {
            // Retention disabled: the drop is policy, not a retirement —
            // `retired` stays a pure signal of interner-churn retirements.
            return;
        }
        if !engine.recycle() {
            self.retired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let fingerprint = engine.config().fingerprint();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        while slots.len() >= self.capacity {
            let lru = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty: len >= capacity >= 1");
            slots.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slots.push(Slot {
            engine,
            fingerprint,
            last_used: now,
        });
    }

    /// A snapshot of the pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_roundtrip() {
        let pool = SessionPool::new(2);
        let config = EngineConfig::default();
        let a = pool.checkout(&config);
        assert!(!a.warm);
        let id = a.engine.id();
        a.engine.intern("N");
        pool.checkin(a.engine);
        assert_eq!(pool.len(), 1);
        let b = pool.checkout(&config);
        assert!(b.warm);
        assert_eq!(b.engine.id(), id, "the same session comes back");
        assert!(b.engine.lookup("N").is_some(), "and it is still warm");
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                ..PoolStats::default()
            }
        );
    }

    #[test]
    fn checkout_keys_on_config_fingerprint() {
        let pool = SessionPool::new(4);
        let big = EngineConfig::default();
        let small = EngineConfig {
            cache_capacity: 8,
            ..EngineConfig::default()
        };
        let a = pool.checkout(&big);
        pool.checkin(a.engine);
        // A differently-configured request must not get the pooled session.
        let b = pool.checkout(&small);
        assert!(!b.warm);
        assert_eq!(b.engine.cache_capacity(), 8);
        // The original config still finds its session.
        assert!(pool.checkout(&big).warm);
    }

    #[test]
    fn lru_eviction_bounds_the_pool() {
        let pool = SessionPool::new(2);
        let config = EngineConfig::default();
        let (a, b, c) = (
            pool.checkout(&config),
            pool.checkout(&config),
            pool.checkout(&config),
        );
        let (a_id, c_id) = (a.engine.id(), c.engine.id());
        pool.checkin(a.engine); // oldest
        pool.checkin(b.engine);
        pool.checkin(c.engine); // evicts a
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 1);
        let ids: Vec<u32> = (0..2).map(|_| pool.checkout(&config).engine.id()).collect();
        assert!(!ids.contains(&a_id), "the LRU session was evicted");
        assert!(ids.contains(&c_id));
    }

    #[test]
    fn checkout_prefers_the_warmest_match() {
        let pool = SessionPool::new(2);
        let config = EngineConfig::default();
        let (a, b) = (pool.checkout(&config), pool.checkout(&config));
        let b_id = b.engine.id();
        pool.checkin(a.engine);
        pool.checkin(b.engine); // most recently used
        assert_eq!(pool.checkout(&config).engine.id(), b_id);
    }

    #[test]
    fn retired_sessions_are_dropped() {
        let pool = SessionPool::new(2);
        let config = EngineConfig {
            interner_capacity: 4,
            ..EngineConfig::default()
        };
        let c = pool.checkout(&config);
        c.engine.intern("A");
        c.engine.intern("B");
        c.engine.intern("C"); // 3/4 full: recycle() retires it
        pool.checkin(c.engine);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.stats().retired, 1);
    }

    #[test]
    fn zero_capacity_pools_nothing() {
        let pool = SessionPool::new(0);
        let config = EngineConfig::default();
        let c = pool.checkout(&config);
        pool.checkin(c.engine);
        assert_eq!(pool.len(), 0);
        assert!(!pool.checkout(&config).warm);
        assert_eq!(
            pool.stats().retired,
            0,
            "drops from a disabled pool are policy, not retirements"
        );
    }

    #[test]
    fn checked_in_sessions_start_with_clean_counters() {
        let pool = SessionPool::new(1);
        let config = EngineConfig::default();
        let c = pool.checkout(&config);
        let outcome = crate::Analyzer::new()
            .engine(c.engine.clone())
            .parallel(false)
            .analyze_with(|| {
                iolb_dfg::Dfg::builder()
                    .input("X", "[N] -> { X[i] : 0 <= i < N }")
                    .statement("S", "[N] -> { S[i] : 0 <= i < N }")
                    .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
                    .build()
                    .unwrap()
            })
            .unwrap();
        assert!(outcome.stats.FEASIBILITY_CHECKS > 0);
        drop(outcome);
        pool.checkin(c.engine);
        let again = pool.checkout(&config);
        assert!(again.warm);
        assert_eq!(
            again.engine.stats(),
            iolb_poly::stats::Snapshot::default(),
            "recycling resets the per-request counters"
        );
        assert!(again.engine.cache_len() > 0, "but keeps the warm cache");
    }
}
