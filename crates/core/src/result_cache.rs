//! Content-addressed whole-analysis result cache (memory + disk tiers).
//!
//! The [`crate::pool::SessionPool`] keeps engine *state* warm, but a repeated
//! request still pays the full Fourier–Motzkin / counting pipeline. This
//! module caches the finished product instead: the serialized
//! [`AnalysisOutcome`](crate::AnalysisOutcome) JSON document, keyed by a
//! 128-bit **analysis fingerprint** over everything that determines it —
//! the canonicalized workload, the option knobs, the report
//! [`crate::report::SCHEMA_VERSION`] and the engine version
//! (see [`crate::Analyzer::fingerprint`]). A cached reply is byte-identical
//! to the computed one, because it *is* the computed one.
//!
//! Three layers, consulted in order by [`ResultCache::claim`]:
//!
//! 1. a **sharded in-memory LRU** of `Arc<String>` documents;
//! 2. an optional **disk tier**: one versioned, checksummed file per entry
//!    (`<fingerprint-hex>.iolbr`), LRU-bounded by total bytes, written
//!    atomically (temp file + rename) so concurrent writers and crashed
//!    daemons can never leave a half-entry that parses. Anything that fails
//!    validation — truncation, bit flips, a foreign format version, a stale
//!    schema — is deleted and treated as a miss;
//! 3. **singleflight**: concurrent requests for the same fingerprint
//!    coalesce into one computation. The first claimant becomes the
//!    *leader* (and computes); the rest block until the leader publishes
//!    and are counted under `inflight_coalesced` — never as hits or
//!    misses, and they never touch the session pool.
//!
//! Degraded or interrupted results are **never** cached: the leader's
//! [`LeaderGuard`] only stores on an explicit [`LeaderGuard::publish`], and
//! dropping the guard (error, panic, degradation) wakes the waiters
//! empty-handed so each retries the claim — the first of them becomes the
//! new leader, the rest coalesce again.

use crate::report::SCHEMA_VERSION;
use iolb_poly::fxhash::{self, FingerprintMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Magic + on-disk format version of a disk-tier entry file. Bumping the
/// format invalidates every existing entry (foreign magic = miss).
pub const DISK_MAGIC: [u8; 8] = *b"IOLBRC01";

/// Fixed header length of a disk-tier entry file: magic (8), report schema
/// version (4), fingerprint (16), payload length (8), checksum (16).
pub const DISK_HEADER_LEN: usize = 52;

/// The 128-bit content address of one analysis request: equal fingerprints
/// promise byte-identical reports. Computed by
/// [`crate::Analyzer::fingerprint`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AnalysisFingerprint(u128);

impl AnalysisFingerprint {
    /// Wraps a raw 128-bit fingerprint.
    pub const fn from_raw(raw: u128) -> Self {
        AnalysisFingerprint(raw)
    }

    /// The raw 128-bit value.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// The 32-character lowercase hex form (the wire and on-disk spelling).
    pub fn to_hex(self) -> String {
        fxhash::to_hex(self.0)
    }

    /// Parses the 32-character hex form back.
    pub fn from_hex(s: &str) -> Option<Self> {
        fxhash::from_hex(s).map(AnalysisFingerprint)
    }
}

impl std::fmt::Display for AnalysisFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Which tier served a hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// The sharded in-memory LRU.
    Memory,
    /// The on-disk tier (the entry is promoted to memory on the way out).
    Disk,
}

/// A cache hit: the exact serialized document of the producing run.
#[derive(Clone)]
pub struct Hit {
    /// The cached `AnalysisOutcome::to_json` document.
    pub json: Arc<String>,
    /// Which tier served it.
    pub tier: Tier,
}

/// Sizing knobs for a [`ResultCache`].
#[derive(Clone, Debug)]
pub struct ResultCacheConfig {
    /// Total in-memory entries across all shards (0 disables the memory
    /// tier; hits then come from disk only).
    pub memory_entries: usize,
    /// Number of LRU shards (lock striping; clamped to at least 1).
    pub shards: usize,
    /// Optional disk tier.
    pub disk: Option<DiskTierConfig>,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        ResultCacheConfig {
            memory_entries: 2048,
            shards: 8,
            disk: None,
        }
    }
}

/// Disk-tier location and bound.
#[derive(Clone, Debug)]
pub struct DiskTierConfig {
    /// Directory holding one `<fingerprint-hex>.iolbr` file per entry
    /// (created if missing; existing entries are adopted on open).
    pub dir: PathBuf,
    /// Total-bytes bound; least-recently-used entries are deleted to stay
    /// under it. Entries larger than the bound are not written.
    pub max_bytes: u64,
}

impl DiskTierConfig {
    /// A disk tier at `dir` with the default 256 MiB bound.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            max_bytes: 256 << 20,
        }
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Memory-tier hits.
    pub hits: u64,
    /// Claims that found nothing and became the leader computation.
    pub misses: u64,
    /// Requests served by waiting on an in-flight leader (counted here
    /// *only* — not under hits or misses).
    pub inflight_coalesced: u64,
    /// Disk-tier hits (each also promotes the entry to memory).
    pub disk_hits: u64,
    /// Memory-tier LRU evictions.
    pub evictions: u64,
    /// Disk-tier LRU evictions (files deleted to stay under the byte bound).
    pub disk_evictions: u64,
    /// Disk entries that failed validation and were deleted (truncation,
    /// checksum mismatch, foreign version, stale schema).
    pub disk_corrupt: u64,
    /// Documents stored (memory and, when configured, disk).
    pub stores: u64,
    /// Leader computations that finished uncacheable (degraded, interrupted
    /// or failed) and published nothing.
    pub uncacheable: u64,
}

#[derive(Default)]
struct StatsCells {
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_coalesced: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
    disk_evictions: AtomicU64,
    disk_corrupt: AtomicU64,
    stores: AtomicU64,
    uncacheable: AtomicU64,
}

struct MemEntry {
    json: Arc<String>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: FingerprintMap<MemEntry>,
    clock: u64,
}

struct FlightState {
    done: bool,
    result: Option<Arc<String>>,
}

/// One in-flight leader computation; waiters block on the condvar.
struct Flight {
    state: Mutex<FlightState>,
    cond: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState {
                done: false,
                result: None,
            }),
            cond: Condvar::new(),
        })
    }

    fn wait(&self) -> Option<Arc<String>> {
        let mut state = self.state.lock().unwrap();
        while !state.done {
            state = self.cond.wait(state).unwrap();
        }
        state.result.clone()
    }

    fn complete(&self, result: Option<Arc<String>>) {
        let mut state = self.state.lock().unwrap();
        state.done = true;
        state.result = result;
        drop(state);
        self.cond.notify_all();
    }
}

/// The outcome of [`ResultCache::claim`].
pub enum Claim {
    /// Served from a tier; reply immediately.
    Hit(Hit),
    /// Served by a concurrent leader's computation; reply immediately.
    Coalesced(Hit),
    /// This request is the leader: compute, then
    /// [`publish`](LeaderGuard::publish) or drop the guard.
    Leader(LeaderGuard),
}

/// The leader's obligation: exactly one of [`publish`](LeaderGuard::publish)
/// (full, non-degraded result) or abandonment (drop — also the panic path),
/// which wakes every coalesced waiter empty-handed so they retry.
pub struct LeaderGuard {
    cache: Arc<ResultCache>,
    flight: Arc<Flight>,
    fp: AnalysisFingerprint,
    done: bool,
}

impl LeaderGuard {
    /// The fingerprint this leader computes for.
    pub fn fingerprint(&self) -> AnalysisFingerprint {
        self.fp
    }

    /// Stores the document in every configured tier, then wakes the
    /// waiters with it. Only call with full (non-degraded, non-interrupted)
    /// results.
    pub fn publish(mut self, json: Arc<String>) {
        // Store *before* retiring the flight: a claimant that finds neither
        // a memory entry nor a flight re-checks memory under the inflight
        // lock, and this ordering makes that re-check authoritative.
        self.cache.store(self.fp, json.clone());
        self.finish(Some(json));
    }

    fn finish(&mut self, result: Option<Arc<String>>) {
        if self.done {
            return;
        }
        self.done = true;
        if result.is_none() {
            self.cache.stats.uncacheable.fetch_add(1, Ordering::Relaxed);
        }
        self.cache.inflight.lock().unwrap().remove(&self.fp.raw());
        self.flight.complete(result);
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        // Unwinding through the leader's computation lands here: waiters
        // must never hang on a dead leader.
        self.finish(None);
    }
}

/// The result cache. Cheap to share (`Arc`); every method takes `&self`.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    inflight: Mutex<FingerprintMap<Arc<Flight>>>,
    disk: Option<DiskTier>,
    stats: StatsCells,
}

impl ResultCache {
    /// Opens a cache. Only fails when a disk tier is configured and its
    /// directory cannot be created or scanned.
    pub fn new(config: ResultCacheConfig) -> std::io::Result<Arc<ResultCache>> {
        let shard_count = config.shards.max(1);
        let shard_capacity = config.memory_entries.div_ceil(shard_count);
        let disk = match config.disk {
            Some(disk_config) => Some(DiskTier::open(disk_config)?),
            None => None,
        };
        Ok(Arc::new(ResultCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: if config.memory_entries == 0 {
                0
            } else {
                shard_capacity
            },
            inflight: Mutex::new(FingerprintMap::default()),
            disk,
            stats: StatsCells::default(),
        }))
    }

    /// A memory-only cache with default sizing.
    pub fn in_memory() -> Arc<ResultCache> {
        ResultCache::new(ResultCacheConfig::default()).expect("memory-only cache cannot fail")
    }

    /// Claims a fingerprint: a [`Claim::Hit`] from a tier, a
    /// [`Claim::Coalesced`] reply from a concurrent leader, or a
    /// [`Claim::Leader`] obligation to compute.
    pub fn claim(self: &Arc<Self>, fp: AnalysisFingerprint) -> Claim {
        loop {
            if let Some(hit) = self.lookup_memory(fp) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(hit);
            }
            if let Some(hit) = self.lookup_disk(fp) {
                return Claim::Hit(hit);
            }
            let existing = {
                let mut inflight = self.inflight.lock().unwrap();
                match inflight.get(&fp.raw()) {
                    Some(flight) => Some(flight.clone()),
                    None => {
                        // A leader stores to memory before retiring its
                        // flight, so re-checking memory here closes the
                        // publish/lookup race.
                        if let Some(hit) = self.lookup_memory(fp) {
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                            return Claim::Hit(hit);
                        }
                        let flight = Flight::new();
                        inflight.insert(fp.raw(), flight.clone());
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        return Claim::Leader(LeaderGuard {
                            cache: self.clone(),
                            flight,
                            fp,
                            done: false,
                        });
                    }
                }
            };
            if let Some(flight) = existing {
                match flight.wait() {
                    Some(json) => {
                        self.stats
                            .inflight_coalesced
                            .fetch_add(1, Ordering::Relaxed);
                        return Claim::Coalesced(Hit {
                            json,
                            tier: Tier::Memory,
                        });
                    }
                    // The leader finished uncacheable: retry the claim —
                    // one waiter becomes the new leader, the rest coalesce
                    // on it again.
                    None => continue,
                }
            }
        }
    }

    /// A plain tier lookup (memory, then disk) without singleflight.
    pub fn lookup(&self, fp: AnalysisFingerprint) -> Option<Hit> {
        if let Some(hit) = self.lookup_memory(fp) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        self.lookup_disk(fp)
    }

    /// Stores a full-result document in every configured tier. Callers must
    /// never store degraded or interrupted results — use
    /// [`LeaderGuard::publish`] (or this, on the recompute-after-abandoned
    /// path) only with clean outcomes.
    pub fn store(&self, fp: AnalysisFingerprint, json: Arc<String>) {
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            let evicted = disk.save(fp, &json);
            self.stats
                .disk_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        self.store_memory(fp, json);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            inflight_coalesced: self.stats.inflight_coalesced.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            disk_evictions: self.stats.disk_evictions.load(Ordering::Relaxed),
            disk_corrupt: self.stats.disk_corrupt.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
            uncacheable: self.stats.uncacheable.load(Ordering::Relaxed),
        }
    }

    /// Resident in-memory entries (for tests and stats).
    pub fn memory_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    fn shard_of(&self, fp: AnalysisFingerprint) -> &Mutex<Shard> {
        // The IdentityHasher map inside each shard keys on the low 64 bits;
        // stripe on high bits so shard choice and bucket choice stay
        // independent.
        &self.shards[((fp.raw() >> 96) as usize) % self.shards.len()]
    }

    fn lookup_memory(&self, fp: AnalysisFingerprint) -> Option<Hit> {
        let mut shard = self.shard_of(fp).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        let entry = shard.entries.get_mut(&fp.raw())?;
        entry.last_used = clock;
        Some(Hit {
            json: entry.json.clone(),
            tier: Tier::Memory,
        })
    }

    fn lookup_disk(&self, fp: AnalysisFingerprint) -> Option<Hit> {
        let disk = self.disk.as_ref()?;
        let (json, corrupt) = disk.load(fp);
        self.stats
            .disk_corrupt
            .fetch_add(corrupt, Ordering::Relaxed);
        let json = json?;
        self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
        // Promote: the next repeat is a memory hit.
        self.store_memory(fp, json.clone());
        Some(Hit {
            json,
            tier: Tier::Disk,
        })
    }

    fn store_memory(&self, fp: AnalysisFingerprint, json: Arc<String>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_of(fp).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        shard.entries.insert(
            fp.raw(),
            MemEntry {
                json,
                last_used: clock,
            },
        );
        while shard.entries.len() > self.shard_capacity {
            // Shards are small (capacity / shard count), so a linear LRU
            // scan beats maintaining an intrusive list.
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity shard");
            shard.entries.remove(&victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct DiskEntry {
    bytes: u64,
    last_used: u64,
}

struct DiskIndex {
    entries: FingerprintMap<DiskEntry>,
    total_bytes: u64,
    clock: u64,
}

/// The on-disk tier: one validated file per entry, bytes-bounded LRU.
struct DiskTier {
    dir: PathBuf,
    max_bytes: u64,
    index: Mutex<DiskIndex>,
    tmp_counter: AtomicU64,
}

impl DiskTier {
    fn open(config: DiskTierConfig) -> std::io::Result<DiskTier> {
        std::fs::create_dir_all(&config.dir)?;
        let mut index = DiskIndex {
            entries: FingerprintMap::default(),
            total_bytes: 0,
            clock: 0,
        };
        // Adopt surviving entries; validation is deferred to first read.
        for dirent in std::fs::read_dir(&config.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("iolbr") {
                continue;
            }
            let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(fxhash::from_hex)
            else {
                continue;
            };
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            index.clock += 1;
            index.total_bytes += meta.len();
            index.entries.insert(
                fp,
                DiskEntry {
                    bytes: meta.len(),
                    last_used: index.clock,
                },
            );
        }
        Ok(DiskTier {
            dir: config.dir,
            max_bytes: config.max_bytes,
            index: Mutex::new(index),
            tmp_counter: AtomicU64::new(0),
        })
    }

    fn entry_path(&self, fp: AnalysisFingerprint) -> PathBuf {
        self.dir.join(format!("{}.iolbr", fp.to_hex()))
    }

    /// Reads and validates one entry. Returns `(document, corrupt_count)`;
    /// a file that exists but fails validation is deleted (repair) and
    /// reported in the second slot.
    fn load(&self, fp: AnalysisFingerprint) -> (Option<Arc<String>>, u64) {
        let path = self.entry_path(fp);
        let Ok(data) = std::fs::read(&path) else {
            return (None, 0);
        };
        match parse_disk_entry(&data, fp) {
            Some(json) => {
                let mut index = self.index.lock().unwrap();
                index.clock += 1;
                let clock = index.clock;
                let bytes = data.len() as u64;
                match index.entries.get_mut(&fp.raw()) {
                    Some(entry) => entry.last_used = clock,
                    None => {
                        index.total_bytes += bytes;
                        index.entries.insert(
                            fp.raw(),
                            DiskEntry {
                                bytes,
                                last_used: clock,
                            },
                        );
                    }
                }
                (Some(Arc::new(json)), 0)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                let mut index = self.index.lock().unwrap();
                if let Some(entry) = index.entries.remove(&fp.raw()) {
                    index.total_bytes = index.total_bytes.saturating_sub(entry.bytes);
                }
                (None, 1)
            }
        }
    }

    /// Writes one entry atomically (temp file + rename) and evicts LRU
    /// entries to honor the byte bound. Returns the eviction count.
    fn save(&self, fp: AnalysisFingerprint, json: &str) -> u64 {
        let payload = json.as_bytes();
        let total = (DISK_HEADER_LEN + payload.len()) as u64;
        if total > self.max_bytes {
            return 0;
        }
        let mut data = Vec::with_capacity(DISK_HEADER_LEN + payload.len());
        data.extend_from_slice(&DISK_MAGIC);
        data.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        data.extend_from_slice(&fp.raw().to_le_bytes());
        data.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        data.extend_from_slice(&fxhash::fingerprint(&payload).to_le_bytes());
        data.extend_from_slice(payload);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            fp.to_hex(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, &data).is_err() {
            return 0;
        }
        let path = self.entry_path(fp);
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return 0;
        }
        let mut index = self.index.lock().unwrap();
        index.clock += 1;
        let clock = index.clock;
        if let Some(old) = index.entries.remove(&fp.raw()) {
            index.total_bytes = index.total_bytes.saturating_sub(old.bytes);
        }
        index.total_bytes += total;
        index.entries.insert(
            fp.raw(),
            DiskEntry {
                bytes: total,
                last_used: clock,
            },
        );
        let mut evicted = 0;
        while index.total_bytes > self.max_bytes && index.entries.len() > 1 {
            let victim = index
                .entries
                .iter()
                .filter(|(k, _)| **k != fp.raw())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over-bound index with more than one entry");
            let entry = index.entries.remove(&victim).expect("victim present");
            index.total_bytes = index.total_bytes.saturating_sub(entry.bytes);
            let _ =
                std::fs::remove_file(self.dir.join(format!("{}.iolbr", fxhash::to_hex(victim))));
            evicted += 1;
        }
        evicted
    }
}

/// Validates one on-disk entry end to end; any deviation is corruption.
fn parse_disk_entry(data: &[u8], fp: AnalysisFingerprint) -> Option<String> {
    if data.len() < DISK_HEADER_LEN || data[..8] != DISK_MAGIC {
        return None;
    }
    let schema = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if schema != SCHEMA_VERSION {
        return None;
    }
    let stored_fp = u128::from_le_bytes(data[12..28].try_into().unwrap());
    if stored_fp != fp.raw() {
        return None;
    }
    let len = u64::from_le_bytes(data[28..36].try_into().unwrap());
    let checksum = u128::from_le_bytes(data[36..52].try_into().unwrap());
    let payload = &data[DISK_HEADER_LEN..];
    if payload.len() as u64 != len || fxhash::fingerprint(&payload) != checksum {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "iolb-result-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u128) -> AnalysisFingerprint {
        AnalysisFingerprint::from_raw(n)
    }

    #[test]
    fn hex_round_trip() {
        let f = fp(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(f.to_hex().len(), 32);
        assert_eq!(AnalysisFingerprint::from_hex(&f.to_hex()), Some(f));
        assert_eq!(AnalysisFingerprint::from_hex("xyz"), None);
    }

    #[test]
    fn memory_store_hit_and_lru_eviction() {
        let cache = ResultCache::new(ResultCacheConfig {
            memory_entries: 2,
            shards: 1,
            disk: None,
        })
        .unwrap();
        cache.store(fp(1), Arc::new("one".to_string()));
        cache.store(fp(2), Arc::new("two".to_string()));
        assert_eq!(*cache.lookup(fp(1)).unwrap().json, "one");
        // Touching 1 makes 2 the LRU victim.
        cache.store(fp(3), Arc::new("three".to_string()));
        assert!(cache.lookup(fp(2)).is_none());
        assert_eq!(*cache.lookup(fp(1)).unwrap().json, "one");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn singleflight_coalesces_and_failed_leader_hands_over() {
        let cache = ResultCache::in_memory();
        // First claim leads.
        let Claim::Leader(guard) = cache.claim(fp(7)) else {
            panic!("expected leader");
        };
        // Abandon (degraded path): a subsequent claim must lead again,
        // not see a cached entry.
        drop(guard);
        let Claim::Leader(guard) = cache.claim(fp(7)) else {
            panic!("expected a fresh leader after abandonment");
        };
        guard.publish(Arc::new("doc".to_string()));
        match cache.claim(fp(7)) {
            Claim::Hit(hit) => assert_eq!(*hit.json, "doc"),
            _ => panic!("expected hit"),
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.uncacheable, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn concurrent_claims_coalesce_on_one_leader() {
        let cache = ResultCache::in_memory();
        let Claim::Leader(guard) = cache.claim(fp(9)) else {
            panic!("expected leader");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || match cache.claim(fp(9)) {
                    Claim::Coalesced(hit) => (*hit.json).clone(),
                    Claim::Hit(hit) => (*hit.json).clone(),
                    Claim::Leader(_) => panic!("second leader while one is in flight"),
                })
            })
            .collect();
        // Give the waiters time to park on the flight.
        std::thread::sleep(std::time::Duration::from_millis(50));
        guard.publish(Arc::new("coalesced".to_string()));
        for w in waiters {
            assert_eq!(w.join().unwrap(), "coalesced");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.inflight_coalesced, 4);
    }

    #[test]
    fn disk_round_trip_restart_and_bound() {
        let dir = tmp_dir("roundtrip");
        let disk = Some(DiskTierConfig {
            dir: dir.clone(),
            max_bytes: 4096,
        });
        {
            let cache = ResultCache::new(ResultCacheConfig {
                memory_entries: 8,
                shards: 2,
                disk: disk.clone(),
            })
            .unwrap();
            cache.store(fp(11), Arc::new("persisted".to_string()));
        }
        // Simulated restart: fresh cache over the same directory.
        let cache = ResultCache::new(ResultCacheConfig {
            memory_entries: 8,
            shards: 2,
            disk,
        })
        .unwrap();
        let hit = cache.lookup(fp(11)).unwrap();
        assert_eq!(*hit.json, "persisted");
        assert_eq!(hit.tier, Tier::Disk);
        // Promoted: second lookup is a memory hit.
        assert_eq!(cache.lookup(fp(11)).unwrap().tier, Tier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_byte_bound_evicts_lru() {
        let dir = tmp_dir("bound");
        let cache = ResultCache::new(ResultCacheConfig {
            memory_entries: 0, // disk only, so lookups exercise the tier
            shards: 1,
            disk: Some(DiskTierConfig {
                dir: dir.clone(),
                max_bytes: (DISK_HEADER_LEN as u64 + 8) * 2,
            }),
        })
        .unwrap();
        cache.store(fp(1), Arc::new("11111111".to_string()));
        cache.store(fp(2), Arc::new("22222222".to_string()));
        cache.store(fp(3), Arc::new("33333333".to_string()));
        assert!(cache.lookup(fp(1)).is_none(), "oldest entry evicted");
        assert!(cache.lookup(fp(3)).is_some());
        assert!(cache.stats().disk_evictions >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_deleted_misses() {
        let dir = tmp_dir("corrupt");
        let config = ResultCacheConfig {
            memory_entries: 0,
            shards: 1,
            disk: Some(DiskTierConfig {
                dir: dir.clone(),
                max_bytes: 1 << 20,
            }),
        };
        let cache = ResultCache::new(config).unwrap();
        cache.store(fp(5), Arc::new("precious".to_string()));
        let path = dir.join(format!("{}.iolbr", fp(5).to_hex()));
        let mut data = std::fs::read(&path).unwrap();
        *data.last_mut().unwrap() ^= 0xff; // flip a payload byte
        std::fs::write(&path, &data).unwrap();
        assert!(cache.lookup(fp(5)).is_none());
        assert_eq!(cache.stats().disk_corrupt, 1);
        assert!(!path.exists(), "corrupt entry deleted (repair)");
        // Repair: storing again round-trips.
        cache.store(fp(5), Arc::new("precious".to_string()));
        assert_eq!(*cache.lookup(fp(5)).unwrap().json, "precious");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
