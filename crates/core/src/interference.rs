//! Path interference analysis and the sum-of-projections coefficients
//! (Sec. 5.1.1, function `coeffInterf` of Algorithm 4).
//!
//! Two DFG-paths are *independent* on a domain `D` when their preimages
//! `R⁻¹(D)` are disjoint — their contributions to the In-set of a K-bounded
//! set never share vertices, so the corresponding projection cardinalities
//! can be *summed* against the single budget `K`. A clique cover of the
//! independence graph (equivalently, a covering family of maximal independent
//! sets of the interference graph) yields coefficients `β_j` such that
//! `Σ_j β_j·|ϕ_j(E)| ≤ K` for every K-bounded set `E`, which Lemma 5.2 turns
//! into a tighter cardinality bound.

use iolb_dfg::DfgPath;
use iolb_math::Rational;
use iolb_poly::BasicSet;

/// The result of interference analysis for a set of paths on a domain.
#[derive(Clone, Debug)]
pub struct Interference {
    /// `β_j` coefficient per path.
    pub betas: Vec<Rational>,
    /// The covering family of independent sets (indices into the path list).
    pub cliques: Vec<Vec<usize>>,
    /// Pairwise independence matrix (`true` = independent, i.e. preimages are
    /// provably disjoint).
    pub independent: Vec<Vec<bool>>,
}

/// Computes pairwise independence of paths on the target domain `d`.
///
/// Paths rooted at different statements are trivially independent (their
/// preimages live in different spaces). Paths rooted at the same statement
/// are independent only when the intersection of their preimages is provably
/// empty for every parameter value.
pub fn independence_matrix(paths: &[DfgPath], d: &BasicSet) -> Vec<Vec<bool>> {
    let preimages: Vec<(String, BasicSet)> = paths
        .iter()
        .map(|p| (p.source().to_string(), p.preimage(d)))
        .collect();
    let n = paths.len();
    let mut m = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let indep = if preimages[i].0 != preimages[j].0 {
                true
            } else {
                preimages[i].1.intersect(&preimages[j].1).is_empty()
            };
            m[i][j] = indep;
            m[j][i] = indep;
        }
    }
    m
}

/// `coeffInterf`: computes the coefficients `β_j` from a greedy covering
/// family of maximal independent sets of the interference graph.
pub fn coeff_interf(paths: &[DfgPath], d: &BasicSet) -> Interference {
    let independent = independence_matrix(paths, d);
    let n = paths.len();
    if n == 0 {
        return Interference {
            betas: vec![],
            cliques: vec![],
            independent,
        };
    }
    // Greedy: for every path not yet covered, grow a maximal independent set
    // seeded with it (preferring not-yet-covered members first so the family
    // stays small).
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let mut covered = vec![false; n];
    for seed in 0..n {
        if covered[seed] {
            continue;
        }
        let mut clique = vec![seed];
        // First pass: uncovered candidates; second pass: the rest.
        for pass in 0..2 {
            for cand in 0..n {
                if clique.contains(&cand) {
                    continue;
                }
                if pass == 0 && covered[cand] {
                    continue;
                }
                if clique.iter().all(|&m| independent[m][cand]) {
                    clique.push(cand);
                }
            }
        }
        for &m in &clique {
            covered[m] = true;
        }
        clique.sort_unstable();
        cliques.push(clique);
    }
    let total = cliques.len() as i128;
    let betas = (0..n)
        .map(|j| {
            let occurrences = cliques.iter().filter(|c| c.contains(&j)).count() as i128;
            Rational::new(occurrences, total)
        })
        .collect();
    Interference {
        betas,
        cliques,
        independent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_dfg::{genpaths, Dfg, GenPathsOptions};
    use iolb_math::rat;

    /// Cholesky DFG (Fig. 7 of the paper, input array omitted).
    fn cholesky() -> Dfg {
        Dfg::builder()
            .statement("S1", "[N] -> { S1[k] : 0 <= k < N }")
            .statement("S2", "[N] -> { S2[k, i] : 0 <= k < N and k + 1 <= i < N }")
            .statement_with_ops(
                "S3",
                "[N] -> { S3[k, i, j] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }",
                2,
            )
            .edge(
                "S3",
                "S3",
                "[N] -> { S3[k, i, j] -> S3[k + 1, i, j] : 1 <= k + 1 < N and k + 2 <= i < N and k + 2 <= j <= i }",
            )
            .edge(
                "S2",
                "S3",
                "[N] -> { S2[k, j] -> S3[k, i, j2] : j2 = j and 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }",
            )
            .edge(
                "S2",
                "S3",
                "[N] -> { S2[k, i] -> S3[k, i2, j] : i2 = i and 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }",
            )
            .edge(
                "S3",
                "S2",
                "[N] -> { S3[k, i, j] -> S2[k2, i2] : k2 = k + 1 and i2 = i and j = k + 1 and 1 <= k + 1 < N and k + 2 <= i < N }",
            )
            .edge(
                "S1",
                "S2",
                "[N] -> { S1[k] -> S2[k2, i] : k2 = k and 0 <= k < N and k + 1 <= i < N }",
            )
            .edge(
                "S3",
                "S1",
                "[N] -> { S3[k, i, j] -> S1[k2] : k2 = k + 1 and i = k + 1 and j = k + 1 and 1 <= k + 1 < N }",
            )
            .build()
            .unwrap()
    }

    /// GEMM-like DFG: C accumulation chain plus two input-array broadcasts.
    fn gemm() -> Dfg {
        Dfg::builder()
            .input("A", "[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
            .input("B", "[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
            .statement_with_ops(
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
                2,
            )
            .edge(
                "A",
                "C",
                "[Ni, Nj, Nk] -> { A[i, k] -> C[i2, j, k2] : i2 = i and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            )
            .edge(
                "B",
                "C",
                "[Ni, Nj, Nk] -> { B[k, j] -> C[i, j2, k2] : j2 = j and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            )
            .edge(
                "C",
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] -> C[i2, j2, k + 1] : i2 = i and j2 = j and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk - 1 }",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_paths_are_mutually_independent() {
        let g = gemm();
        let dom = g.node("C").unwrap().domain.clone();
        let paths = genpaths(&g, "C", &dom, &GenPathsOptions::default());
        // Keep the three one-edge paths (chain from C, broadcasts from A, B).
        let singles: Vec<DfgPath> = paths
            .into_iter()
            .filter(|p| p.vertices.len() == 2)
            .collect();
        assert_eq!(singles.len(), 3);
        let interf = coeff_interf(&singles, &dom);
        // Sources A, B, C are all different spaces -> one clique of all three,
        // betas all 1.
        assert_eq!(interf.cliques.len(), 1);
        assert_eq!(interf.betas, vec![Rational::ONE; 3]);
    }

    #[test]
    fn cholesky_betas_match_appendix_a() {
        let g = cholesky();
        let dom = g.node("S3").unwrap().domain.clone();
        let paths = genpaths(&g, "S3", &dom, &GenPathsOptions::default());
        let singles: Vec<DfgPath> = paths
            .into_iter()
            .filter(|p| p.vertices.len() == 2)
            .collect();
        // Chain S3->S3 plus the two S2->S3 broadcasts.
        assert_eq!(singles.len(), 3);
        let interf = coeff_interf(&singles, &dom);
        // Appendix A: P1 independent of P2 and P3; P2 interferes with P3.
        // Greedy cover: {P1, P2} and {P1, P3} (in some order), so
        // beta = (1, 1/2, 1/2) up to path ordering.
        let chain_idx = singles.iter().position(|p| p.kind.is_chain()).unwrap();
        assert_eq!(interf.betas[chain_idx], Rational::ONE);
        let mut others: Vec<Rational> = (0..3)
            .filter(|&i| i != chain_idx)
            .map(|i| interf.betas[i])
            .collect();
        others.sort();
        assert_eq!(others, vec![rat(1, 2), rat(1, 2)]);
        assert_eq!(interf.cliques.len(), 2);
    }

    #[test]
    fn empty_path_list() {
        let g = gemm();
        let dom = g.node("C").unwrap().domain.clone();
        let interf = coeff_interf(&[], &dom);
        assert!(interf.betas.is_empty());
        assert!(interf.cliques.is_empty());
    }
}
