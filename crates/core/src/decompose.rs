//! CDAG decomposition and bound combination (Sec. 4).
//!
//! Lemma 4.2 allows lower bounds for sub-CDAGs to be *summed* provided their
//! may-spill sets are pairwise disjoint. Two mechanisms use it:
//!
//! * **bounded combination** (`combine_sub_bounds`, the role of Algorithm 1):
//!   a finite collection of candidate bounds from different statements /
//!   path combinations is combined greedily, keeping a candidate only when
//!   its may-spill set does not interfere with the ones already accepted;
//! * **loop parametrization** (`sum_over_parameter`, Sec. 4.3): a bound
//!   derived for one symbolic slice `Ω` of an outer loop is summed over all
//!   slice values, after checking that the per-slice may-spill sets are
//!   disjoint for distinct values of `Ω`.

use crate::bound::{Instance, LowerBound};
use iolb_poly::{count, BasicSet, Constraint, Context, LinExpr, UnionSet};
use iolb_symbol::{sum_over, Expr, Poly};

/// Greedily combines candidate bounds whose may-spill sets are pairwise
/// disjoint (the simplification of Algorithm 1 discussed in DESIGN.md:
/// interfering candidates are dropped rather than recomputed, which preserves
/// validity and only costs tightness).
///
/// Candidates are considered in decreasing order of their value at the given
/// parameter instance — the instance only drives this heuristic ordering, the
/// returned expression is valid for every parameter value.
pub fn combine_sub_bounds(bounds: &[LowerBound], instance: &Instance) -> (Expr, Vec<usize>) {
    let mut order: Vec<usize> = (0..bounds.len()).collect();
    order.sort_by(|&a, &b| {
        bounds[b]
            .evaluate(instance)
            .partial_cmp(&bounds[a].evaluate(instance))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut used_spill = UnionSet::empty();
    let mut total = Expr::zero();
    let mut accepted = Vec::new();
    for idx in order {
        let b = &bounds[idx];
        if b.is_trivial() || b.evaluate(instance) <= 0.0 {
            continue;
        }
        if used_spill.intersects(&b.may_spill) {
            continue;
        }
        total = total + b.expr.clone().max_with_zero();
        used_spill = used_spill.union(&b.may_spill);
        accepted.push(idx);
    }
    (total, accepted)
}

/// Checks whether the may-spill set of a parametrized bound is disjoint for
/// distinct values of the slicing parameter `omega` (the `Q.interf(Ω) ∩
/// Q.interf(Ω′) = ∅` premise of `combine_paramQ` in Algorithm 6).
///
/// The check renames `Ω` to a fresh `Ω'` in one copy, adds the constraint
/// `Ω' ≥ Ω + 1`, and tests the intersection for emptiness — parameters are
/// handled existentially, so a `true` answer holds for every pair of distinct
/// slice values.
pub fn slices_are_disjoint(may_spill: &UnionSet, omega: &str) -> bool {
    let omega2 = format!("{omega}__next");
    let shifted = may_spill.rename_param(omega, &omega2);
    let gap = Constraint::ge0(
        LinExpr::param(0, &omega2)
            .sub(&LinExpr::param(0, omega))
            .sub(&LinExpr::constant(0, 1)),
    );
    let original = may_spill.constrain_params(&gap);
    let shifted = shifted.constrain_params(&gap);
    !original.intersects(&shifted)
}

/// Sums a per-slice bound over all values of the slicing parameter `omega`
/// (Sec. 4.3). The range of `omega` is derived from the given statement
/// domain dimension, with `hi_offset` added to the upper end (wavefront
/// bounds pass `-1` because the last slice has no successor slice). Returns
/// `None` when the per-slice expression is not a polynomial in `omega` with
/// non-negative integer exponents, or when the dimension's symbolic bounds
/// cannot be extracted.
pub fn sum_over_parameter(
    per_slice: &LowerBound,
    omega: &str,
    statement_domain: &BasicSet,
    dim: usize,
    hi_offset: i128,
    ctx: &Context,
) -> Option<LowerBound> {
    if !slices_are_disjoint(&per_slice.may_spill, omega) {
        return None;
    }
    let (lo, hi) = dim_bounds(statement_domain, dim, ctx)?;
    let hi = hi + Poly::int(hi_offset);
    // Guard the per-slice expression at zero before summing (a negative
    // per-slice value would otherwise subtract from the total).
    let guarded = per_slice.expr.clone().max_with_zero();
    // Summation requires a single polynomial; resolve the max by keeping the
    // non-negative arm only when it is non-negative over the whole range is
    // not checkable symbolically, so we sum the raw polynomial and guard the
    // total instead (still a valid lower bound: Σ max(0, q) ≥ max(0, Σ q)).
    let poly = match &per_slice.expr {
        Expr::Poly(p) => p.clone(),
        Expr::Max(_) => return None,
    };
    let _ = guarded;
    let summed = sum_over(&poly, omega, &lo, &hi);
    let mut notes = per_slice.notes.clone();
    notes.push(format!(
        "summed over {omega} ∈ [{lo}, {hi}] (loop parametrization, Sec. 4.3)"
    ));
    Some(LowerBound {
        expr: Expr::from_poly(summed).max_with_zero(),
        may_spill: union_over_parameter(&per_slice.may_spill, omega, &lo, &hi, statement_domain),
        technique: per_slice.technique,
        statement: per_slice.statement.clone(),
        notes,
    })
}

/// The union of the per-slice may-spill sets over all slice values: obtained
/// by replacing the equality `dim = Ω` with the range constraints of the
/// loop. We approximate it by dropping the `Ω` parameter (existentially
/// projecting it), which yields a superset — the conservative direction for
/// subsequent disjointness tests.
fn union_over_parameter(
    may_spill: &UnionSet,
    omega: &str,
    lo: &Poly,
    hi: &Poly,
    statement_domain: &BasicSet,
) -> UnionSet {
    let _ = (lo, hi);
    let mut out = UnionSet::empty();
    for (_, set) in may_spill.iter() {
        // Project the Ω parameter out of every disjunct by treating it as an
        // extra existential variable.
        let mut pieces = Vec::new();
        for p in set.parts() {
            pieces.push(project_param(p, omega));
        }
        if let Some(first) = pieces.first() {
            let space = first.space().clone();
            out.add_set(iolb_poly::Set::from_basic_sets(space, pieces));
        }
    }
    // Always include the statement's own domain (every slice is inside it).
    out.add_set(statement_domain.to_set());
    out
}

/// Eliminates a parameter from a basic set by treating it as an extra
/// variable and projecting it away.
fn project_param(set: &BasicSet, param: &str) -> BasicSet {
    let n = set.dim();
    let mut constraints = Vec::new();
    for c in set.constraints() {
        let coef = c.expr.param_coeff(param);
        let mut e = c.expr.remap_vars(n + 1, &(0..n).collect::<Vec<_>>());
        if coef != 0 {
            e.var_coeffs[n] = coef;
            e.clear_param(param);
        }
        constraints.push(Constraint {
            expr: e,
            kind: c.kind,
        });
    }
    let projected =
        iolb_poly::EngineCtx::with_current(|e| iolb_poly::fm::eliminate_var_in(e, &constraints, n));
    BasicSet::from_constraints(set.space().clone(), projected)
}

/// Extracts the symbolic lower and upper bound of a statement-domain
/// dimension (used to derive the summation range of `Ω`).
pub fn dim_bounds(domain: &BasicSet, dim: usize, ctx: &Context) -> Option<(Poly, Poly)> {
    // Project away every other dimension and read off the bounds.
    let mut reduced = domain.clone();
    // Eliminate from the innermost dimension to keep indices stable.
    for idx in (0..domain.dim()).rev() {
        if idx != dim {
            reduced = reduced.project_out(idx);
        }
    }
    // After projection the set has a single dimension (index 0).
    let mut sys = reduced.constraints().to_vec();
    for c in ctx.constraints() {
        sys.push(Constraint {
            expr: c.expr.remap_vars(1, &[]),
            kind: c.kind,
        });
    }
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    for c in &sys {
        let a = c.expr.var_coeff(0);
        if a == 0 {
            continue;
        }
        if a.abs() != 1 {
            return None;
        }
        let mut rest = c.expr.clone();
        rest.var_coeffs[0] = 0;
        match c.kind {
            iolb_poly::ConstraintKind::Equality => return None,
            iolb_poly::ConstraintKind::Inequality => {
                if a > 0 {
                    lowers.push(rest.scale(-1));
                } else {
                    uppers.push(rest);
                }
            }
        }
    }
    if lowers.len() != 1 || uppers.len() != 1 {
        return None;
    }
    Some((linexpr_to_poly(&lowers[0]), linexpr_to_poly(&uppers[0])))
}

fn linexpr_to_poly(e: &LinExpr) -> Poly {
    let mut p = Poly::constant(iolb_math::Rational::from_int(e.constant));
    for (name, c) in e.param_terms_by_name() {
        p = p + Poly::param(&name).scale(iolb_math::Rational::from_int(c));
    }
    p
}

/// Total input-data size of a DFG (the compulsory-miss term added by the
/// driver, `input_size(G)` in Algorithm 6).
pub fn input_size(dfg: &iolb_dfg::Dfg, ctx: &Context) -> Poly {
    dfg.input_size(ctx).unwrap_or_else(|| {
        // Fall back to counting each input array individually, skipping the
        // ones outside the countable class (conservative: under-counting the
        // compulsory misses keeps the bound valid).
        let engine = iolb_poly::EngineCtx::current();
        let mut total = Poly::zero();
        for node in dfg.inputs() {
            if let Some(c) = count::card_basic_in(&engine, &node.domain, ctx) {
                total = total + c;
            }
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::Technique;
    use iolb_poly::parse_set;

    fn ctx() -> Context {
        Context::empty().assume_ge("N", 4).assume_ge("M", 4)
    }

    fn bound_with_spill(expr: Poly, spill_sets: &[&str]) -> LowerBound {
        let mut ms = UnionSet::empty();
        for s in spill_sets {
            ms.add_set(parse_set(s).unwrap().to_set());
        }
        LowerBound {
            expr: Expr::from_poly(expr),
            may_spill: ms,
            technique: Technique::Partition,
            statement: "S".to_string(),
            notes: vec![],
        }
    }

    #[test]
    fn disjoint_bounds_are_summed() {
        // Example 3 (Fig. 4): two sub-CDAGs with disjoint may-spill sets, each
        // contributing N²/(2S); the combination is their sum.
        let b1 = bound_with_spill(
            Poly::param("N") * Poly::param("N"),
            &["[N] -> { S[k, i] : 0 <= k < N and 0 <= i <= k }"],
        );
        let b2 = bound_with_spill(
            Poly::param("N") * Poly::param("N"),
            &["[N] -> { S[k, i] : 0 <= k < N and k < i < N }"],
        );
        let instance = Instance::from_pairs(&[("N", 100), ("S", 16)]);
        let (total, accepted) = combine_sub_bounds(&[b1, b2], &instance);
        assert_eq!(accepted.len(), 2);
        let v = total.eval_params(&[("N", 10), ("S", 4)]).unwrap();
        assert_eq!(v, 200.0);
    }

    #[test]
    fn interfering_bounds_keep_only_the_best() {
        let b1 = bound_with_spill(
            Poly::param("N") * Poly::param("N"),
            &["[N] -> { S[k, i] : 0 <= k < N and 0 <= i < N }"],
        );
        let b2 = bound_with_spill(
            Poly::param("N"),
            &["[N] -> { S[k, i] : 0 <= k < N and 0 <= i <= k }"],
        );
        let instance = Instance::from_pairs(&[("N", 100), ("S", 16)]);
        let (total, accepted) = combine_sub_bounds(&[b1, b2], &instance);
        assert_eq!(accepted, vec![0]);
        let v = total.eval_params(&[("N", 10), ("S", 4)]).unwrap();
        assert_eq!(v, 100.0);
    }

    #[test]
    fn negative_candidates_are_skipped() {
        let b = bound_with_spill(
            Poly::param("N") - Poly::param("S"),
            &["[N] -> { S[i] : 0 <= i < N }"],
        );
        let instance = Instance::from_pairs(&[("N", 10), ("S", 100)]);
        let (total, accepted) = combine_sub_bounds(&[b], &instance);
        assert!(accepted.is_empty());
        assert!(total.is_zero());
    }

    #[test]
    fn slice_disjointness() {
        // A may-spill set pinned to the slice t = Ω is disjoint across slices.
        let sliced = UnionSet::from_set(
            parse_set("[N, Omega] -> { S[t, i] : t = Omega and 0 <= i < N }")
                .unwrap()
                .to_set(),
        );
        assert!(slices_are_disjoint(&sliced, "Omega"));
        // One that spans [Ω, Ω+1] is not.
        let wide = UnionSet::from_set(
            parse_set("[N, Omega] -> { S[t, i] : Omega <= t <= Omega + 1 and 0 <= i < N }")
                .unwrap()
                .to_set(),
        );
        assert!(!slices_are_disjoint(&wide, "Omega"));
    }

    #[test]
    fn summation_over_outer_loop() {
        // Per-slice bound N − S with slices Ω = 1 .. M−1 (Example 2): the
        // total is (M−1)(N−S).
        let per_slice = LowerBound {
            expr: Expr::from_poly(Poly::param("N") - Poly::param("S")),
            may_spill: UnionSet::from_set(
                parse_set("[M, N, Omega] -> { S2[t, i] : t = Omega and 0 <= i < N }")
                    .unwrap()
                    .to_set(),
            ),
            technique: Technique::Wavefront,
            statement: "S2".to_string(),
            notes: vec![],
        };
        let domain = parse_set("[M, N] -> { S2[t, i] : 1 <= t < M and 0 <= i < N }").unwrap();
        let summed = sum_over_parameter(&per_slice, "Omega", &domain, 0, 0, &ctx()).unwrap();
        let v = summed
            .expr
            .eval_params(&[("M", 6), ("N", 100), ("S", 16)])
            .unwrap();
        assert_eq!(v, 5.0 * 84.0);
        // With a -1 offset the last slice is dropped: (M-2)(N-S).
        let shifted = sum_over_parameter(
            &LowerBound {
                expr: Expr::from_poly(Poly::param("N") - Poly::param("S")),
                may_spill: UnionSet::from_set(
                    parse_set("[M, N, Omega] -> { S2[t, i] : t = Omega and 0 <= i < N }")
                        .unwrap()
                        .to_set(),
                ),
                technique: Technique::Wavefront,
                statement: "S2".to_string(),
                notes: vec![],
            },
            "Omega",
            &domain,
            0,
            -1,
            &ctx(),
        )
        .unwrap();
        let v2 = shifted
            .expr
            .eval_params(&[("M", 6), ("N", 100), ("S", 16)])
            .unwrap();
        assert_eq!(v2, 4.0 * 84.0);
    }

    #[test]
    fn dim_bounds_extraction() {
        let d = parse_set("[M, N] -> { S[t, i] : 1 <= t < M and 0 <= i < N }").unwrap();
        let (lo, hi) = dim_bounds(&d, 0, &ctx()).unwrap();
        assert_eq!(lo.to_string(), "1");
        assert_eq!(hi.to_string(), "M - 1");
        let (lo_i, hi_i) = dim_bounds(&d, 1, &ctx()).unwrap();
        assert_eq!(lo_i.to_string(), "0");
        assert_eq!(hi_i.to_string(), "N - 1");
    }

    #[test]
    fn input_size_sums_arrays() {
        let g = iolb_dfg::Dfg::builder()
            .input("A", "[N] -> { A[i] : 0 <= i < N }")
            .input("B", "[M, N] -> { B[i, j] : 0 <= i < M and 0 <= j < N }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("A", "S", "[N] -> { A[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap();
        let size = input_size(&g, &ctx());
        assert_eq!(size.to_string(), "M*N + N");
    }
}
