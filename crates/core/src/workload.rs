//! The [`Workload`] trait: one door into the analysis for every program
//! representation.
//!
//! The suite has three ways to describe a program — built-in PolyBench
//! kernels (`iolb-polybench`), hand-written polyhedral IR (`iolb-ir`), and
//! affine-C source / `.iolb` files (`iolb-frontend`). A [`Workload`] turns
//! any of them into a [`PreparedWorkload`]: the DFG to analyse plus the
//! metadata the driver and the report need (name, program parameters, tuned
//! options, the symbolic operation count when known).
//!
//! **Session binding.** [`Workload::prepare`] is always invoked by
//! [`crate::Analyzer`] *inside* the engine session the analysis will run in,
//! so implementations should construct their polyhedral objects from
//! session-independent source data (names, source text, ISL-like notation)
//! at `prepare` time. Implementations over pre-built polyhedral objects
//! (e.g. a raw [`Dfg`]) are bound to the session those objects were created
//! in — analyse them with [`crate::Analyzer::engine`] pointing at that
//! session (resolving a foreign object panics rather than silently aliasing
//! parameter names).

use iolb_dfg::Dfg;
use iolb_poly::EngineCtx;

use crate::driver::AnalysisOptions;

/// A workload made ready for the driver: the DFG plus analysis metadata.
pub struct PreparedWorkload {
    /// Display name (kernel name, file stem, or a generic label).
    pub name: String,
    /// The data-flow graph to analyse.
    pub dfg: Dfg,
    /// The program parameters (sorted by name).
    pub params: Vec<String>,
    /// Workload-tuned analysis options, when the workload carries them
    /// (built-in kernels do); `None` lets the [`crate::Analyzer`] derive
    /// defaults from `params`.
    pub options: Option<AnalysisOptions>,
    /// Symbolic operation count override for the report, when known.
    pub ops: Option<iolb_symbol::Poly>,
    /// Source-level facts for preflight diagnostics (spans, declared vs.
    /// referenced arrays), when the workload was lowered from source text;
    /// `None` for built-in kernels and raw DFGs.
    pub source: Option<iolb_preflight::SourceInfo>,
}

/// An error preparing a workload (file I/O, front-end, lowering, …).
#[derive(Clone, Debug)]
pub struct WorkloadError(pub String);

impl WorkloadError {
    /// Builds an error from any displayable cause.
    pub fn new(msg: impl std::fmt::Display) -> Self {
        WorkloadError(msg.to_string())
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

/// Something the [`crate::Analyzer`] can analyse.
///
/// Implemented for [`Dfg`] here, for `Kernel` in `iolb-polybench`, for
/// `Program` / `AccessProgram` in `iolb-ir`, and for `LoweredProgram` /
/// `IolbSource` / `IolbFile` in `iolb-frontend`.
pub trait Workload {
    /// Builds the DFG and metadata. Called inside the analysis session.
    fn prepare(&self) -> Result<PreparedWorkload, WorkloadError>;

    /// A **canonical, session-independent** serialization of this workload
    /// for content-addressed result caching
    /// ([`crate::result_cache::ResultCache`]), or `None` to opt out.
    ///
    /// The contract: two workloads with equal keys must prepare to the same
    /// DFG, metadata and tuned options — byte-identical reports under equal
    /// [`crate::Analyzer`] knobs. Canonical means semantically irrelevant
    /// spelling differences (whitespace, comments) map to the same key.
    /// The default opts out, which is always safe: workloads without a key
    /// bypass the result cache and are computed fresh. Session-bound
    /// workloads (raw [`Dfg`]s, pre-lowered programs) must stay opted out —
    /// their identity lives in interned engine state, not in the value.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

/// The parameters mentioned by a DFG (union over every node domain and edge
/// relation), sorted by name.
pub fn dfg_params(dfg: &Dfg) -> Vec<String> {
    EngineCtx::with_current(|engine| {
        let mut out: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for node in dfg.nodes() {
            for p in iolb_poly::fm::collect_params_in(engine, node.domain.constraints()) {
                out.insert(p);
            }
        }
        for edge in dfg.edges() {
            for p in iolb_poly::fm::collect_params_in(engine, edge.relation.constraints()) {
                out.insert(p);
            }
        }
        out.into_iter().collect()
    })
}

/// A raw DFG is a workload. **Session binding applies**: the DFG embeds
/// interned parameter ids, so analyse it in the session it was built in
/// (pass that session to [`crate::Analyzer::engine`]).
impl Workload for Dfg {
    fn prepare(&self) -> Result<PreparedWorkload, WorkloadError> {
        Ok(PreparedWorkload {
            name: "program".to_string(),
            params: dfg_params(self),
            dfg: self.clone(),
            options: None,
            ops: None,
            source: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfg_params_collects_and_sorts() {
        let dfg = Dfg::builder()
            .input("X", "[N, M] -> { X[i] : 0 <= i < N + M }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap();
        assert_eq!(dfg_params(&dfg), vec!["M".to_string(), "N".to_string()]);
        let prepared = dfg.prepare().unwrap();
        assert_eq!(prepared.name, "program");
        assert!(prepared.options.is_none());
    }
}
