//! Derived lower bounds and their bookkeeping.
//!
//! Every proof technique (K-partition, wavefront) produces a [`LowerBound`]:
//! a symbolic expression that is a valid lower bound on the I/O of a
//! sub-CDAG, together with the *may-spill* set of that sub-CDAG
//! (Definition 4.1), which governs when bounds for different sub-CDAGs can be
//! summed (Lemma 4.2).

use iolb_poly::UnionSet;
use iolb_symbol::Expr;
use std::collections::BTreeMap;
use std::fmt;

/// The proof technique that produced a bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Technique {
    /// The K-partition / Brascamp–Lieb geometric argument (Sec. 5).
    Partition,
    /// The wavefront argument (Sec. 6).
    Wavefront,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technique::Partition => write!(f, "K-partition"),
            Technique::Wavefront => write!(f, "wavefront"),
        }
    }
}

/// A valid parametric lower bound on the I/O of a sub-CDAG.
#[derive(Clone, Debug)]
pub struct LowerBound {
    /// The bound expression (a function of the program parameters and `S`).
    pub expr: Expr,
    /// The may-spill set of the sub-CDAG the bound applies to.
    pub may_spill: UnionSet,
    /// Which technique produced the bound.
    pub technique: Technique,
    /// The statement the reasoning was centred on.
    pub statement: String,
    /// Human-readable notes describing how the bound was derived (the "proof
    /// sketch" that the tool emits, per the paper's proof-environment view).
    pub notes: Vec<String>,
}

impl LowerBound {
    /// A trivial zero bound (useful as the neutral element when combining).
    pub fn zero(statement: &str, technique: Technique) -> Self {
        LowerBound {
            expr: Expr::zero(),
            may_spill: UnionSet::empty(),
            technique,
            statement: statement.to_string(),
            notes: Vec::new(),
        }
    }

    /// Evaluates the bound at a concrete parameter instance (used by the
    /// combination heuristics of Algorithm 1; the symbolic bound itself stays
    /// valid for all parameter values).
    pub fn evaluate(&self, instance: &Instance) -> f64 {
        self.expr
            .eval_f64(&instance.as_f64_env())
            .unwrap_or(0.0)
            .max(0.0)
    }

    /// Returns true if the bound is identically zero.
    pub fn is_trivial(&self) -> bool {
        self.expr.is_zero()
    }
}

impl fmt::Display for LowerBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} @ {}] Q >= {}",
            self.technique, self.statement, self.expr
        )
    }
}

/// A concrete assignment of the program parameters and the cache size,
/// used only for the heuristic decisions of Sec. 7.2 (the emitted bounds are
/// valid for every parameter value).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Instance {
    values: BTreeMap<String, i128>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Builds an instance from `(name, value)` pairs.
    pub fn from_pairs(pairs: &[(&str, i128)]) -> Self {
        Instance {
            values: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// Sets one parameter value.
    pub fn set(mut self, name: &str, value: i128) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Gets a parameter value.
    pub fn get(&self, name: &str) -> Option<i128> {
        self.values.get(name).copied()
    }

    /// Moves the value stored under `from` (if any) to the key `to` — used
    /// when the cache parameter is renamed so the instance keeps tracking it.
    pub fn rename(mut self, from: &str, to: &str) -> Self {
        if let Some(v) = self.values.remove(from) {
            self.values.insert(to.to_string(), v);
        }
        self
    }

    /// All `(name, value)` pairs.
    pub fn pairs(&self) -> Vec<(String, i128)> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// View as an `f64` evaluation environment.
    pub fn as_f64_env(&self) -> BTreeMap<String, f64> {
        self.values
            .iter()
            .map(|(k, v)| (k.clone(), *v as f64))
            .collect()
    }

    /// View as the `(&str, i128)` slice shape used by the polyhedral layer.
    pub fn as_param_slice(&self) -> Vec<(String, i128)> {
        self.pairs()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_symbol::Poly;

    #[test]
    fn instance_roundtrip() {
        let inst = Instance::from_pairs(&[("N", 100), ("S", 64)]).set("M", 50);
        assert_eq!(inst.get("N"), Some(100));
        assert_eq!(inst.get("M"), Some(50));
        assert_eq!(inst.get("X"), None);
        assert_eq!(inst.pairs().len(), 3);
    }

    #[test]
    fn bound_evaluation_clamps_at_zero() {
        let expr = Expr::from_poly(Poly::param("N") - Poly::param("S"));
        let b = LowerBound {
            expr,
            may_spill: UnionSet::empty(),
            technique: Technique::Wavefront,
            statement: "S1".to_string(),
            notes: vec![],
        };
        let small = Instance::from_pairs(&[("N", 10), ("S", 100)]);
        let big = Instance::from_pairs(&[("N", 1000), ("S", 100)]);
        assert_eq!(b.evaluate(&small), 0.0);
        assert_eq!(b.evaluate(&big), 900.0);
    }

    #[test]
    fn zero_bound_is_trivial() {
        let b = LowerBound::zero("S", Technique::Partition);
        assert!(b.is_trivial());
        assert_eq!(b.to_string(), "[K-partition @ S] Q >= 0");
    }
}
