//! Two-sided locality reports: the paper's Sec. 8.2 tightness study as a
//! first-class pipeline stage.
//!
//! The analysis half of the system derives a *parametric* data-movement lower
//! bound `Q_low`. This module supplies the other side: it generates a
//! word-granular address trace from **any** [`crate::Workload`]'s DFG at a
//! concrete parameter instance, simulates it through the LRU (and optionally
//! Belady/OPT) cache model of `iolb-cachesim`, and reports the measured miss
//! counts next to `Q_low` evaluated at the same instance. The ratio
//! `Q_low / misses` is the *tightness* of the bound: a sound engine keeps it
//! at most 1, and the closer to 1 the tighter the bound.
//!
//! ## Trace model
//!
//! The walk replays the canonical statement-major schedule: statements in
//! declaration order, each statement's domain points in ascending
//! lexicographic order. For every dynamic statement instance the walker
//! issues one read per incoming flow dependence (resolved through the edge
//! relation to the producer coordinate), then one write of the instance's own
//! value. Reads are ordered by a semantic edge signature so that two DFGs
//! describing the same program — e.g. a built-in kernel and its `.iolb` twin
//! — produce byte-identical traces regardless of edge declaration order.
//!
//! Addresses are assigned on first touch, sequentially, per memory *cell*.
//! A statement's value space collapses along its reduction dimension (the
//! direction of a unique single-offset self dependence, e.g. the `k` in
//! `C[i,j,k] = C[i,j,k-1] + ...`), reconstructing the in-place accumulation
//! of the original program; all other dimensions address distinct cells.
//! Collapsing along the dependence chain is schedule-valid, and any valid
//! schedule's traffic is lower-bounded by `Q_low`, so measured misses remain
//! an upper envelope for the bound (enforced by the soundness gate in
//! `tests/engine_equivalence.rs`).
//!
//! Huge instances degrade instead of hanging: the walker honours the
//! session's [`iolb_poly::budget`] checkpoints (deadline / cancellation) and
//! an explicit trace-length budget, marking the instance as skipped rather
//! than stalling a serve worker.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;

use crate::bound::Instance;
use crate::driver::Analysis;
use crate::report::json_escape;
use crate::workload::dfg_params;
pub use iolb_cachesim::{simulate_lru, simulate_optimal, CacheStats};
use iolb_dfg::Dfg;
use iolb_math::Rational;
use iolb_poly::{AffineFunction, BasicMap, BasicSet, EngineCtx, EngineInterrupt};

/// Default value assigned to every program parameter when no instance is
/// supplied: small enough to simulate in milliseconds, large enough that
/// boundary effects do not dominate.
pub const DEFAULT_SIMULATION_PARAM: i128 = 16;

/// Default fast-memory capacity (in words) simulated when none is requested.
pub const DEFAULT_CACHE_WORDS: usize = 1024;

/// Default trace-length budget (number of word accesses) per instance.
pub const DEFAULT_MAX_TRACE: u64 = 4_000_000;

/// Largest coordinate magnitude the walker will scan per dimension; an
/// instance whose parameters exceed this degrades to a skipped entry.
const MAX_ENUM_BOUND: i128 = 1 << 20;

/// How the tightness pass is run: which instances, which cache sizes,
/// whether the (quadratic, hence opt-in) Belady simulation runs too, and the
/// trace-length budget.
#[derive(Clone, Debug)]
pub struct TightnessOptions {
    /// Concrete parameter instances to simulate. Empty means "derive one":
    /// every program parameter set to [`DEFAULT_SIMULATION_PARAM`].
    pub instances: Vec<Instance>,
    /// Fast-memory capacities (words) to simulate. Zero entries are ignored;
    /// empty falls back to [`DEFAULT_CACHE_WORDS`].
    pub cache_sizes: Vec<usize>,
    /// Also run the optimal-replacement (Belady) simulation.
    pub opt: bool,
    /// Trace-length budget per instance; a longer walk is marked skipped.
    pub max_trace: u64,
}

impl Default for TightnessOptions {
    fn default() -> Self {
        TightnessOptions {
            instances: Vec::new(),
            cache_sizes: vec![DEFAULT_CACHE_WORDS],
            opt: false,
            max_trace: DEFAULT_MAX_TRACE,
        }
    }
}

impl TightnessOptions {
    /// Adds one concrete instance to simulate.
    pub fn instance(mut self, instance: Instance) -> Self {
        self.instances.push(instance);
        self
    }

    /// Replaces the simulated cache-size list.
    pub fn cache_sizes(mut self, sizes: &[usize]) -> Self {
        self.cache_sizes = sizes.to_vec();
        self
    }

    /// Enables or disables the Belady (OPT) simulation.
    pub fn opt(mut self, opt: bool) -> Self {
        self.opt = opt;
        self
    }

    /// Sets the trace-length budget per instance.
    pub fn max_trace(mut self, max_trace: u64) -> Self {
        self.max_trace = max_trace;
        self
    }

    /// The cache sizes that will actually be simulated: positive entries,
    /// sorted and deduplicated, defaulting to [`DEFAULT_CACHE_WORDS`].
    pub fn effective_cache_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .cache_sizes
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        if sizes.is_empty() {
            sizes.push(DEFAULT_CACHE_WORDS);
        }
        sizes
    }
}

/// Why a trace could not be generated for an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

fn trace_err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

/// The address trace of one DFG walk at one concrete instance.
#[derive(Clone, Debug)]
pub struct GeneratedTrace {
    /// Word-granular address trace (first-touch sequential addresses).
    pub trace: Vec<u64>,
    /// Number of distinct addresses touched.
    pub distinct_addresses: u64,
    /// Arithmetic operations performed by the walked statement instances.
    pub ops: f64,
    /// Dynamic statement instances walked.
    pub points: u64,
    /// True when the walk stopped at the trace-length budget (the trace is a
    /// prefix and must not be fed to the tightness comparison).
    pub truncated: bool,
}

/// Measured misses at one cache size, next to the evaluated bound.
#[derive(Clone, Debug)]
pub struct CachePoint {
    /// Simulated fast-memory capacity in words.
    pub cache_words: usize,
    /// LRU simulation result.
    pub lru: CacheStats,
    /// Belady (OPT) simulation result, when requested.
    pub opt: Option<CacheStats>,
    /// `Q_low` evaluated at the instance with the cache parameter set to
    /// `cache_words` (`None` if the bound does not evaluate numerically).
    pub q_low: Option<f64>,
}

impl CachePoint {
    /// Tightness against LRU misses: `Q_low / lru_misses` (≤ 1 for a sound
    /// bound; closer to 1 is tighter).
    pub fn tightness_lru(&self) -> Option<f64> {
        match (self.q_low, self.lru.misses) {
            (Some(q), m) if m > 0 => Some(q / m as f64),
            _ => None,
        }
    }

    /// Tightness against OPT misses, when the Belady simulation ran.
    pub fn tightness_opt(&self) -> Option<f64> {
        match (self.q_low, &self.opt) {
            (Some(q), Some(o)) if o.misses > 0 => Some(q / o.misses as f64),
            _ => None,
        }
    }
}

/// Simulation results for one concrete instance.
#[derive(Clone, Debug)]
pub struct InstanceTightness {
    /// The instance (program parameters only; the cache parameter varies per
    /// [`CachePoint`]).
    pub instance: Instance,
    /// Generated trace length (prefix length when skipped mid-walk).
    pub trace_len: u64,
    /// Distinct addresses touched by the (possibly partial) walk.
    pub distinct_addresses: u64,
    /// Arithmetic operations covered by the walk.
    pub ops: f64,
    /// `Some(reason)` when the instance degraded (trace budget, engine
    /// budget trip, missing parameter, oversized enumeration) — no cache
    /// points are reported for a skipped instance.
    pub skipped: Option<String>,
    /// One entry per simulated cache size.
    pub caches: Vec<CachePoint>,
}

/// The combined two-sided locality report: measured misses vs. `Q_low` per
/// instance per cache size.
#[derive(Clone, Debug)]
pub struct TightnessReport {
    /// Name of the cache-size parameter of the bound (usually `S`).
    pub cache_param: String,
    /// The trace-length budget the walks ran under.
    pub max_trace: u64,
    /// One entry per requested instance.
    pub instances: Vec<InstanceTightness>,
}

impl TightnessReport {
    /// Instances that produced a full trace and at least one cache point.
    pub fn simulated(&self) -> impl Iterator<Item = &InstanceTightness> {
        self.instances
            .iter()
            .filter(|i| i.skipped.is_none() && !i.caches.is_empty())
    }

    /// The smallest LRU tightness ratio across all simulated points —
    /// the report's one-number summary.
    pub fn min_tightness_lru(&self) -> Option<f64> {
        self.simulated()
            .flat_map(|i| i.caches.iter().filter_map(CachePoint::tightness_lru))
            .fold(None, |acc, t| {
                Some(acc.map_or(t, |a: f64| if t < a { t } else { a }))
            })
    }

    /// Renders the report as the JSON object spliced into the analysis
    /// report under the `"tightness"` key (base indentation two spaces).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "    \"cache_param\": {},",
            json_escape(&self.cache_param)
        );
        let _ = writeln!(out, "    \"max_trace\": {},", self.max_trace);
        out.push_str("    \"instances\": [");
        for (i, inst) in self.instances.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      {\n");
            out.push_str("        \"params\": {");
            for (j, (k, v)) in inst.instance.pairs().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_escape(k), v);
            }
            out.push_str("},\n");
            let _ = writeln!(out, "        \"trace_len\": {},", inst.trace_len);
            let _ = writeln!(
                out,
                "        \"distinct_addresses\": {},",
                inst.distinct_addresses
            );
            let _ = writeln!(out, "        \"ops\": {},", fmt_f64(Some(inst.ops)));
            match &inst.skipped {
                Some(reason) => {
                    let _ = writeln!(out, "        \"skipped\": {},", json_escape(reason));
                }
                None => out.push_str("        \"skipped\": null,\n"),
            }
            out.push_str("        \"caches\": [");
            for (j, cp) in inst.caches.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n          {");
                let _ = write!(
                    out,
                    "\"cache_words\": {}, \"lru_accesses\": {}, \"lru_misses\": {}, ",
                    cp.cache_words, cp.lru.accesses, cp.lru.misses
                );
                match &cp.opt {
                    Some(o) => {
                        let _ = write!(out, "\"opt_misses\": {}, ", o.misses);
                    }
                    None => out.push_str("\"opt_misses\": null, "),
                }
                let _ = write!(
                    out,
                    "\"q_low\": {}, \"tightness_lru\": {}, \"tightness_opt\": {}}}",
                    fmt_f64(cp.q_low),
                    fmt_f64(cp.tightness_lru()),
                    fmt_f64(cp.tightness_opt())
                );
            }
            if !inst.caches.is_empty() {
                out.push_str("\n        ");
            }
            out.push_str("]\n      }");
        }
        if !self.instances.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
        out
    }

    /// One-line human summary, e.g. for CLI output.
    pub fn summary_line(&self) -> String {
        let simulated = self.simulated().count();
        let skipped = self.instances.len() - simulated;
        match self.min_tightness_lru() {
            Some(t) => format!(
                "tightness: {simulated} instance(s) simulated, {skipped} skipped, min Q_low/LRU-misses = {t:.4}"
            ),
            None => format!("tightness: {simulated} instance(s) simulated, {skipped} skipped"),
        }
    }
}

/// Renders an `Option<f64>` as a JSON number or `null` (never `NaN`/`inf`,
/// which are not JSON).
fn fmt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

/// Achieved operational intensity of an externally generated reference trace
/// (the Figure-6 measurement path): LRU-simulate the trace and divide the
/// operation count by the measured misses.
pub fn achieved_oi(trace: &[u64], ops: f64, cache_words: usize) -> f64 {
    simulate_lru(trace, cache_words).operational_intensity(ops)
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

/// How one incoming dependence resolves a producer coordinate from a
/// consumer coordinate.
enum Resolver {
    /// The relation is reverse-functional: producer = f(consumer), guarded
    /// by relation membership.
    Function(AffineFunction),
    /// General fallback: enumerate the (almost always zero- or one-point)
    /// set of producers related to the consumer point.
    Search,
}

/// One incoming dependence of a statement, pre-resolved for the walk.
struct ReadPlan {
    src_idx: usize,
    relation: BasicMap,
    resolver: Resolver,
}

/// One statement of the walk: its domain and pre-resolved reads (the
/// per-node collapse masks live in the shared `keeps` table).
struct StatementPlan {
    node_idx: usize,
    dims: usize,
    domain: BasicSet,
    ops_per_instance: u64,
    reads: Vec<ReadPlan>,
}

/// A semantic signature for an edge's read side, independent of constraint
/// declaration order: identical programs produce identical signatures, which
/// keeps the read order (and hence first-touch addresses) byte-identical
/// between a built-in kernel and its `.iolb` twin.
fn read_signature(relation: &BasicMap) -> String {
    match relation.as_function_of_range() {
        Some(f) => {
            let mut s = String::from("fn:");
            for r in 0..f.constants.len() {
                if r > 0 {
                    s.push(';');
                }
                for c in 0..f.linear.num_cols() {
                    let _ = write!(s, "{},", f.linear[(r, c)]);
                }
                for (p, q) in &f.param_coeffs[r] {
                    let _ = write!(s, "{p}*{q},");
                }
                let _ = write!(s, "+{}", f.constants[r]);
            }
            s
        }
        None => format!("search:{relation}"),
    }
}

/// The per-node memory-cell collapse mask. A statement whose value space
/// carries a *unique* self dependence that is a pure translation along
/// exactly one dimension is a reduction: that dimension is dropped from the
/// cell key (the accumulation happens in place). Inputs and every other
/// shape keep all dimensions — which can only inflate the measured misses,
/// never deflate them below a valid schedule's traffic.
fn collapse_mask(dfg: &Dfg, name: &str, dims: usize) -> Vec<bool> {
    let self_edges: Vec<&iolb_dfg::DfgEdge> = dfg
        .edges()
        .iter()
        .filter(|e| e.src == name && e.dst == name)
        .collect();
    let mut keep = vec![true; dims];
    if let [only] = self_edges.as_slice() {
        if let Some(offsets) = only.relation.translation_offsets() {
            let nonzero: Vec<usize> = offsets
                .iter()
                .enumerate()
                .filter(|(_, &o)| o != 0)
                .map(|(d, _)| d)
                .collect();
            if let [d] = nonzero.as_slice() {
                keep[*d] = false;
            }
        }
    }
    keep
}

fn collapse(coords: &[i128], keep: &[bool]) -> Vec<i128> {
    coords
        .iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(&c, _)| c)
        .collect()
}

struct Walker<'a> {
    engine: std::sync::Arc<EngineCtx>,
    env: &'a BTreeMap<String, i128>,
    params: &'a [(&'a str, i128)],
    bound: i128,
    max_trace: u64,
    trace: Vec<u64>,
    addresses: HashMap<(usize, Vec<i128>), u64>,
    next_address: u64,
    ops: f64,
    points: u64,
    truncated: bool,
    work: u32,
}

impl Walker<'_> {
    /// Budget checkpoint, amortised over the hot loops.
    fn tick(&mut self) {
        self.work = self.work.wrapping_add(1);
        if self.work.is_multiple_of(1024) {
            self.engine.checkpoint_poll();
        }
    }

    /// Records one access to `(node, cell)`, assigning first-touch
    /// sequential addresses.
    fn touch(&mut self, node_idx: usize, cell: Vec<i128>) {
        if self.trace.len() as u64 >= self.max_trace {
            self.truncated = true;
            return;
        }
        let next = &mut self.next_address;
        let addr = *self.addresses.entry((node_idx, cell)).or_insert_with(|| {
            let a = *next;
            *next += 1;
            a
        });
        self.trace.push(addr);
    }

    /// Emits the accesses of one dynamic statement instance.
    fn visit_point(&mut self, st: &StatementPlan, keeps: &[Vec<bool>], point: &[i128]) {
        for read in &st.reads {
            match &read.resolver {
                Resolver::Function(f) => {
                    if let Some(src) = eval_affine(f, point, self.env) {
                        if read.relation.contains(&src, point, self.params) {
                            let cell = collapse(&src, &keeps[read.src_idx]);
                            self.touch(read.src_idx, cell);
                        }
                    }
                }
                Resolver::Search => {
                    let n_in = read.relation.n_in();
                    let mut src = vec![0i128; n_in];
                    self.search_sources(read, point, &mut src, 0, keeps);
                }
            }
            if self.truncated {
                return;
            }
        }
        self.touch(st.node_idx, collapse(point, &keeps[st.node_idx]));
        self.ops += st.ops_per_instance as f64;
        self.points += 1;
    }

    /// Fallback read resolution: enumerate producer coordinates related to
    /// the fixed consumer `point`, pruning constraints as soon as every
    /// producer dimension they mention is bound.
    fn search_sources(
        &mut self,
        read: &ReadPlan,
        point: &[i128],
        src: &mut Vec<i128>,
        depth: usize,
        keeps: &[Vec<bool>],
    ) {
        let n_in = src.len();
        if depth == n_in {
            let mut vars = src.clone();
            vars.extend_from_slice(point);
            if read
                .relation
                .constraints()
                .iter()
                .all(|c| c.holds(&vars, self.env))
            {
                let cell = collapse(src, &keeps[read.src_idx]);
                self.touch(read.src_idx, cell);
            }
            return;
        }
        for v in -self.bound..=self.bound {
            self.tick();
            if self.truncated {
                return;
            }
            src[depth] = v;
            let mut vars = src.clone();
            vars[depth + 1..n_in].fill(0);
            vars.extend_from_slice(point);
            let feasible = read.relation.constraints().iter().all(|c| {
                if c.expr.var_coeffs[depth + 1..n_in].iter().any(|&x| x != 0) {
                    true // mentions an unbound producer dimension: defer
                } else {
                    c.holds(&vars, self.env)
                }
            });
            if feasible {
                self.search_sources(read, point, src, depth + 1, keeps);
            }
        }
    }

    /// Enumerates a statement's domain in ascending lexicographic order,
    /// visiting each point; prunes a prefix as soon as some constraint over
    /// already-bound dimensions fails.
    fn enumerate_statement(
        &mut self,
        st: &StatementPlan,
        keeps: &[Vec<bool>],
        point: &mut Vec<i128>,
        depth: usize,
    ) {
        if self.truncated {
            return;
        }
        if depth == st.dims {
            self.visit_point(st, keeps, point);
            return;
        }
        for v in -self.bound..=self.bound {
            self.tick();
            if self.truncated {
                return;
            }
            point[depth] = v;
            point[depth + 1..].fill(0);
            let feasible = st.domain.constraints().iter().all(|c| {
                if c.expr.var_coeffs[depth + 1..].iter().any(|&x| x != 0) {
                    true
                } else {
                    c.holds(point, self.env)
                }
            });
            if feasible {
                self.enumerate_statement(st, keeps, point, depth + 1);
            }
        }
    }
}

/// Evaluates `producer = f(consumer)` in exact rationals; `None` when some
/// coordinate is fractional (no integer producer point).
fn eval_affine(
    f: &AffineFunction,
    point: &[i128],
    env: &BTreeMap<String, i128>,
) -> Option<Vec<i128>> {
    let mut out = Vec::with_capacity(f.constants.len());
    for r in 0..f.constants.len() {
        let mut acc = f.constants[r];
        for (c, &x) in point.iter().enumerate() {
            acc += f.linear[(r, c)] * Rational::new(x, 1);
        }
        for (p, q) in &f.param_coeffs[r] {
            let v = env.get(p)?;
            acc += *q * Rational::new(*v, 1);
        }
        if !acc.is_integer() {
            return None;
        }
        out.push(acc.floor());
    }
    Some(out)
}

/// Generates the canonical statement-major address trace of `dfg` at
/// `instance`. Honours the ambient session's budget checkpoints; a walk
/// longer than `max_trace` accesses returns with `truncated = true`.
pub fn generate_trace(
    dfg: &Dfg,
    instance: &Instance,
    max_trace: u64,
) -> Result<GeneratedTrace, TraceError> {
    let params = dfg_params(dfg);
    let mut env: BTreeMap<String, i128> = BTreeMap::new();
    for p in &params {
        match instance.get(p) {
            Some(v) => {
                env.insert(p.clone(), v);
            }
            None => {
                return Err(trace_err(format!(
                    "parameter `{p}` has no value in the simulation instance"
                )))
            }
        }
    }

    // Coordinates are bounded by affine combinations of the parameters and
    // the constraint constants; the sum of magnitudes (plus slack) bounds
    // every feasible coordinate the pruned scan can reach.
    let mut bound: i128 = env.values().map(|v| v.abs()).sum();
    for node in dfg.nodes() {
        for c in node.domain.constraints() {
            bound = bound.max(c.expr.constant.abs());
        }
    }
    bound += 2;
    if bound > MAX_ENUM_BOUND {
        return Err(trace_err(format!(
            "instance too large to enumerate directly (coordinate bound {bound} > {MAX_ENUM_BOUND}); \
             simulate at smaller parameter values"
        )));
    }

    let node_index: BTreeMap<&str, usize> = dfg
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), i))
        .collect();
    let keeps: Vec<Vec<bool>> = dfg
        .nodes()
        .iter()
        .map(|n| {
            if n.is_input {
                vec![true; n.domain.dim()]
            } else {
                collapse_mask(dfg, &n.name, n.domain.dim())
            }
        })
        .collect();

    let mut plans: Vec<StatementPlan> = Vec::new();
    for (idx, node) in dfg.nodes().iter().enumerate() {
        if node.is_input {
            continue;
        }
        let mut reads: Vec<(String, ReadPlan)> = Vec::new();
        for edge in dfg.edges().iter().filter(|e| e.dst == node.name) {
            let src_idx = *node_index
                .get(edge.src.as_str())
                .ok_or_else(|| trace_err(format!("edge from unknown node `{}`", edge.src)))?;
            let resolver = match edge.relation.as_function_of_range() {
                Some(f) => Resolver::Function(f),
                None => Resolver::Search,
            };
            let key = format!("{}\u{0}{}", edge.src, read_signature(&edge.relation));
            reads.push((
                key,
                ReadPlan {
                    src_idx,
                    relation: edge.relation.clone(),
                    resolver,
                },
            ));
        }
        reads.sort_by(|a, b| a.0.cmp(&b.0));
        plans.push(StatementPlan {
            node_idx: idx,
            dims: node.domain.dim(),
            domain: node.domain.clone(),
            ops_per_instance: node.ops_per_instance,
            reads: reads.into_iter().map(|(_, r)| r).collect(),
        });
    }

    let borrowed: Vec<(&str, i128)> = env.iter().map(|(k, &v)| (k.as_str(), v)).collect();
    let mut walker = Walker {
        engine: EngineCtx::current(),
        env: &env,
        params: &borrowed,
        bound,
        max_trace,
        trace: Vec::new(),
        addresses: HashMap::new(),
        next_address: 0,
        ops: 0.0,
        points: 0,
        truncated: false,
        work: 0,
    };
    for st in &plans {
        let mut point = vec![0i128; st.dims];
        walker.enumerate_statement(st, &keeps, &mut point, 0);
        if walker.truncated {
            break;
        }
    }

    Ok(GeneratedTrace {
        distinct_addresses: walker.next_address,
        trace: walker.trace,
        ops: walker.ops,
        points: walker.points,
        truncated: walker.truncated,
    })
}

/// Runs the full tightness pass for a prepared workload's DFG against its
/// analysis: walk each requested instance, simulate each cache size, and
/// evaluate `Q_low` alongside. Engine-budget trips and oversized instances
/// degrade to `skipped` entries instead of failing the pass.
pub fn measure(
    dfg: &Dfg,
    analysis: &Analysis,
    params: &[String],
    options: &TightnessOptions,
) -> TightnessReport {
    let cache_sizes = options.effective_cache_sizes();
    let requested: Vec<Instance> = if options.instances.is_empty() {
        let mut inst = Instance::new();
        for p in params {
            inst = inst.set(p, DEFAULT_SIMULATION_PARAM);
        }
        vec![inst]
    } else {
        options.instances.clone()
    };

    let mut instances = Vec::with_capacity(requested.len());
    for instance in requested {
        let generated =
            EngineInterrupt::catch(|| generate_trace(dfg, &instance, options.max_trace));
        let entry = match generated {
            Err(interrupt) => InstanceTightness {
                instance,
                trace_len: 0,
                distinct_addresses: 0,
                ops: 0.0,
                skipped: Some(format!("engine budget tripped: {}", interrupt.code())),
                caches: Vec::new(),
            },
            Ok(Err(err)) => InstanceTightness {
                instance,
                trace_len: 0,
                distinct_addresses: 0,
                ops: 0.0,
                skipped: Some(err.message),
                caches: Vec::new(),
            },
            Ok(Ok(gt)) if gt.truncated => InstanceTightness {
                instance,
                trace_len: gt.trace.len() as u64,
                distinct_addresses: gt.distinct_addresses,
                ops: gt.ops,
                skipped: Some(format!(
                    "trace budget exceeded ({} accesses); raise max_trace or shrink the instance",
                    options.max_trace
                )),
                caches: Vec::new(),
            },
            Ok(Ok(gt)) => {
                let caches = cache_sizes
                    .iter()
                    .map(|&c| {
                        let at = instance.clone().set(&analysis.cache_param, c as i128);
                        CachePoint {
                            cache_words: c,
                            lru: simulate_lru(&gt.trace, c),
                            opt: options.opt.then(|| simulate_optimal(&gt.trace, c)),
                            q_low: analysis.q_at(&at),
                        }
                    })
                    .collect();
                InstanceTightness {
                    instance,
                    trace_len: gt.trace.len() as u64,
                    distinct_addresses: gt.distinct_addresses,
                    ops: gt.ops,
                    skipped: None,
                    caches,
                }
            }
        };
        instances.push(entry);
    }

    TightnessReport {
        cache_param: analysis.cache_param.clone(),
        max_trace: options.max_trace,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_dfg() -> Dfg {
        iolb_polybench::kernel_by_name("gemm").unwrap().dfg
    }

    fn touch_oracle(
        addresses: &mut HashMap<(&'static str, Vec<i128>), u64>,
        next: &mut u64,
        trace: &mut Vec<u64>,
        name: &'static str,
        cell: Vec<i128>,
    ) {
        let addr = *addresses.entry((name, cell)).or_insert_with(|| {
            let a = *next;
            *next += 1;
            a
        });
        trace.push(addr);
    }

    /// The trace-generator pin: a hand-written replay of the documented walk
    /// semantics for gemm must reproduce the generated trace byte for byte —
    /// statement-major lex order, reads sorted by (src, signature) so the
    /// self-dependence read lands between B and Cin, first-touch addresses,
    /// and the reduction collapse of `C[i,j,k]` onto the cell `C[i,j]`.
    #[test]
    fn gemm_trace_matches_hand_written_oracle() {
        let (ni, nj, nk) = (3i128, 4i128, 5i128);
        let instance = Instance::new().set("Ni", ni).set("Nj", nj).set("Nk", nk);
        let generated = generate_trace(&gemm_dfg(), &instance, DEFAULT_MAX_TRACE).unwrap();

        let mut addresses = HashMap::new();
        let mut next = 0u64;
        let mut expected = Vec::new();
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    touch_oracle(&mut addresses, &mut next, &mut expected, "A", vec![i, k]);
                    touch_oracle(&mut addresses, &mut next, &mut expected, "B", vec![k, j]);
                    if k > 0 {
                        touch_oracle(&mut addresses, &mut next, &mut expected, "C", vec![i, j]);
                    } else {
                        touch_oracle(&mut addresses, &mut next, &mut expected, "Cin", vec![i, j]);
                    }
                    touch_oracle(&mut addresses, &mut next, &mut expected, "C", vec![i, j]);
                }
            }
        }

        assert_eq!(generated.trace, expected);
        assert_eq!(generated.distinct_addresses, next);
        assert_eq!(
            generated.distinct_addresses,
            (ni * nk + nk * nj + 2 * ni * nj) as u64
        );
        assert_eq!(generated.points, (ni * nj * nk) as u64);
        assert_eq!(generated.ops, (2 * ni * nj * nk) as f64);
        assert!(!generated.truncated);
    }

    #[test]
    fn trace_budget_truncates_instead_of_hanging() {
        let instance = Instance::new().set("Ni", 8).set("Nj", 8).set("Nk", 8);
        let generated = generate_trace(&gemm_dfg(), &instance, 10).unwrap();
        assert!(generated.truncated);
        assert_eq!(generated.trace.len(), 10);
    }

    #[test]
    fn missing_parameter_is_an_error_not_a_panic() {
        let instance = Instance::new().set("Ni", 4).set("Nj", 4);
        let err = generate_trace(&gemm_dfg(), &instance, 100).unwrap_err();
        assert!(err.message.contains("Nk"), "{}", err.message);
    }

    #[test]
    fn oversized_instances_degrade_to_an_error() {
        let instance = Instance::new().set("Ni", 1 << 30).set("Nj", 4).set("Nk", 4);
        let err = generate_trace(&gemm_dfg(), &instance, 100).unwrap_err();
        assert!(err.message.contains("too large"), "{}", err.message);
    }

    #[test]
    fn effective_cache_sizes_filters_sorts_dedups_and_defaults() {
        let opts = TightnessOptions::default().cache_sizes(&[8192, 0, 1024, 8192]);
        assert_eq!(opts.effective_cache_sizes(), vec![1024, 8192]);
        let empty = TightnessOptions::default().cache_sizes(&[0]);
        assert_eq!(empty.effective_cache_sizes(), vec![DEFAULT_CACHE_WORDS]);
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        let instance = Instance::new().set("Ni", 4).set("Nj", 4).set("Nk", 4);
        let a = generate_trace(&gemm_dfg(), &instance, DEFAULT_MAX_TRACE).unwrap();
        let b = generate_trace(&gemm_dfg(), &instance, DEFAULT_MAX_TRACE).unwrap();
        assert_eq!(a.trace, b.trace);
    }
}
