//! The main IOLB procedure (`program_Q`, Algorithm 6).
//!
//! For every loop-parametrization depth and every statement, the driver
//! gathers chain/broadcast paths on a shrinking working copy of the DFG,
//! maintains the kernel subgroup lattice, derives K-partition and wavefront
//! bounds, sums parametrized bounds over their slicing parameter, and finally
//! combines the non-interfering candidates (Lemma 4.2) on top of the
//! compulsory-miss term `input_size(G)`.

use crate::bound::{Instance, LowerBound};
use crate::decompose::{combine_sub_bounds, dim_bounds, input_size, sum_over_parameter};
use crate::partition::{partition_bound, PartitionInput};
use crate::wavefront::{wavefront_bound, WavefrontInput};
use iolb_dfg::{genpaths, Dfg, DfgPath, GenPathsOptions};
use iolb_math::Lattice;
use iolb_poly::{count, Context, EngineInterrupt, UnionSet};
use iolb_symbol::Expr;

/// Configuration of the analysis.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Name of the fast-memory capacity parameter.
    pub cache_param: String,
    /// Parameter instances used for the combination heuristics (Sec. 7.2).
    pub instances: Vec<Instance>,
    /// Parameter context (assumptions such as `N ≥ 2`) for symbolic counting.
    pub ctx: Context,
    /// Path-generation budget.
    pub genpaths: GenPathsOptions,
    /// Budget for the subgroup-lattice closure (Algorithm 2).
    pub lattice_budget: usize,
    /// Maximum loop-parametrization depth explored (0 = only the global,
    /// unparametrized analysis; 1 also slices the outermost loop, …).
    pub max_parametrization_depth: usize,
    /// Fraction `γ` of the statement domain a path must cover to be kept
    /// (Algorithm 6, line 12), as a pair (numerator, denominator).
    pub gamma: (u64, u64),
    /// Maximum number of path-combination rounds per statement (how many
    /// disjoint sub-CDAGs of the same statement may be discovered, e.g. the
    /// two triangles of floyd-warshall / Example 3).
    pub max_rounds_per_statement: usize,
    /// Fan the per-statement / per-depth candidate derivations out over OS
    /// threads. Candidates are re-assembled in the deterministic serial
    /// order before the Lemma-4.2 combination step, so the result is
    /// byte-identical to a serial run.
    pub parallel: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            cache_param: "S".to_string(),
            instances: vec![Instance::from_pairs(&[("S", 512)])],
            ctx: Context::empty(),
            genpaths: GenPathsOptions::default(),
            lattice_budget: 20_000,
            max_parametrization_depth: 1,
            gamma: (1, 4),
            max_rounds_per_statement: 3,
            parallel: true,
        }
    }
}

impl AnalysisOptions {
    /// Creates options with a default instance where every listed parameter
    /// takes the given value and the cache parameter takes `cache_value`.
    pub fn with_default_instance(params: &[&str], value: i128, cache_value: i128) -> Self {
        AnalysisOptions::default().with_instance_defaults(params, value, cache_value)
    }

    /// Fills in the default context and heuristic instance on top of `self`:
    /// every listed parameter takes `value` (and is assumed `≥ 4`), and the
    /// options' **own** [`cache_param`](AnalysisOptions::cache_param) — not a
    /// hard-coded `"S"` — takes `cache_value`.
    pub fn with_instance_defaults(
        mut self,
        params: &[&str],
        value: i128,
        cache_value: i128,
    ) -> Self {
        let mut inst = Instance::new().set(&self.cache_param, cache_value);
        let mut ctx = Context::empty();
        for p in params {
            inst = inst.set(p, value);
            ctx = ctx.assume_ge(p, 4);
        }
        self.instances = vec![inst];
        self.ctx = ctx;
        self
    }
}

/// How far an interrupted analysis got before its budget tripped (see
/// [`analyze_interruptible`]): the sweep progress plus the limit that fired.
/// A degraded analysis still carries a *valid* (just possibly weaker) lower
/// bound — every candidate it kept was fully proven before the interrupt.
#[derive(Clone, Debug)]
pub struct Degradation {
    /// The budget limit that tripped first.
    pub interrupt: EngineInterrupt,
    /// Candidate-derivation jobs that ran to completion.
    pub sweep_completed: usize,
    /// Total candidate-derivation jobs in the sweep.
    pub sweep_total: usize,
}

/// The result of analysing a program.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The complete parametric lower bound `Q_low` on the number of loads.
    pub q_low: Expr,
    /// The compulsory-miss (input-size) term included in `q_low`.
    pub input_size: iolb_symbol::Poly,
    /// The candidate bounds that were accepted into the combination.
    pub accepted: Vec<LowerBound>,
    /// All candidate bounds that were derived (accepted or not).
    pub candidates: Vec<LowerBound>,
    /// Total operation count of the program (symbolic).
    pub total_ops: Option<iolb_symbol::Poly>,
    /// Name of the cache-capacity parameter.
    pub cache_param: String,
    /// `Some` when a budget interrupted the candidate sweep and `q_low` is
    /// the best bound proven *before* the interrupt (still valid, possibly
    /// weaker than an unbudgeted run's). `None` for a complete analysis.
    pub degradation: Option<Degradation>,
}

impl Analysis {
    /// The asymptotically dominant form `Q∞` of the bound.
    pub fn q_asymptotic(&self) -> iolb_symbol::Poly {
        iolb_symbol::asymptotic::simplify(&self.q_low, &self.cache_param)
    }

    /// Evaluates `Q_low` at a parameter instance.
    pub fn q_at(&self, instance: &Instance) -> Option<f64> {
        self.q_low.eval_f64(&instance.as_f64_env())
    }
}

/// Runs the full IOLB analysis on a DFG (Algorithm 6).
///
/// Equivalent to [`analyze_interruptible`] for unbudgeted sessions. When the
/// ambient session carries a budget and it trips before any valid bound
/// exists, the interrupt is re-raised (callers that want the typed error
/// should use [`analyze_interruptible`]).
pub fn analyze(dfg: &Dfg, options: &AnalysisOptions) -> Analysis {
    match analyze_interruptible(dfg, options) {
        Ok(analysis) => analysis,
        Err(interrupt) => interrupt.raise(),
    }
}

/// Runs the full IOLB analysis, degrading gracefully when the ambient
/// session's [budget](iolb_poly::Budget) trips.
///
/// The compulsory-miss term `input_size(G)` — itself a valid lower bound —
/// is computed **first**; interruption there is the hard-error case (no
/// valid bound exists yet). Once it is in hand, every later interrupt only
/// *degrades* the result: candidate-derivation jobs that trip are dropped
/// (each job's bounds are independent), and an interrupt during the
/// Lemma-4.2 combination falls back to the best single proven candidate by
/// pure arithmetic. The returned [`Analysis::degradation`] records the first
/// interrupt and the sweep progress.
pub fn analyze_interruptible(
    dfg: &Dfg,
    options: &AnalysisOptions,
) -> Result<Analysis, EngineInterrupt> {
    let ctx = &options.ctx;

    // The compulsory-miss term doubles as the minimal valid bound every
    // degraded outcome can fall back to, so it goes first.
    let (input, total_ops) = EngineInterrupt::catch(|| (input_size(dfg, ctx), dfg.total_ops(ctx)))?;

    let max_depth = dfg.statements().map(|s| s.domain.dim()).max().unwrap_or(0);

    // Candidate derivation is independent per (parametrization depth,
    // statement) pair — only the Lemma-4.2 combination below needs the whole
    // collection — so the jobs can fan out over threads. The job list and the
    // per-job candidate order are deterministic, and results are flattened in
    // job order, so parallel and serial runs produce identical candidates.
    // Each job catches its own interrupt *inside* the closure: thread-scope
    // panic propagation would lose the typed payload, and an interrupted job
    // must not discard its siblings' finished work.
    let mut jobs: Vec<(usize, String)> = Vec::new();
    for depth in 0..=options
        .max_parametrization_depth
        .min(max_depth.saturating_sub(1))
    {
        for stmt in dfg.statements() {
            if stmt.domain.dim() < depth + 1 {
                continue;
            }
            jobs.push((depth, stmt.name.clone()));
        }
    }
    type JobResult = Result<Vec<LowerBound>, EngineInterrupt>;
    let per_job: Vec<JobResult> = if options.parallel && jobs.len() > 1 {
        crate::par::parallel_map(&jobs, |(depth, name)| {
            EngineInterrupt::catch(|| derive_candidates(dfg, options, *depth, name))
        })
    } else {
        jobs.iter()
            .map(|(depth, name)| {
                EngineInterrupt::catch(|| derive_candidates(dfg, options, *depth, name))
            })
            .collect()
    };
    let sweep_total = per_job.len();
    let mut sweep_completed = 0;
    let mut first_interrupt: Option<EngineInterrupt> = None;
    let mut candidates: Vec<LowerBound> = Vec::new();
    for job in per_job {
        match job {
            Ok(bounds) => {
                sweep_completed += 1;
                candidates.extend(bounds);
            }
            Err(interrupt) => {
                if first_interrupt.is_none() {
                    first_interrupt = Some(interrupt);
                }
            }
        }
    }

    // --- Combine the candidates (Algorithm 1). ---
    // The combination itself issues engine queries (`may_spill`
    // intersections), so under an already-tripped budget it is caught too
    // and replaced by the best single proven candidate — any one candidate
    // plus the input term is still a valid bound (Lemma 4.2 with a
    // singleton selection).
    let combination = EngineInterrupt::catch(|| {
        let mut best_expr = Expr::zero();
        let mut best_accepted: Vec<usize> = Vec::new();
        let mut best_value = f64::NEG_INFINITY;
        for inst in instances_or_default(options) {
            let (expr, accepted) = combine_sub_bounds(&candidates, &inst);
            let value = expr.eval_f64(&inst.as_f64_env()).unwrap_or(0.0);
            if value > best_value {
                best_value = value;
                best_expr = expr;
                best_accepted = accepted;
            }
        }
        (best_expr, best_accepted)
    });
    let (best_expr, best_accepted) = match combination {
        Ok(best) => best,
        Err(interrupt) => {
            if first_interrupt.is_none() {
                first_interrupt = Some(interrupt);
            }
            best_single_candidate(&candidates, &instances_or_default(options))
        }
    };

    let q_low = Expr::from_poly(input.clone()) + best_expr.max_with_zero();

    Ok(Analysis {
        q_low,
        input_size: input,
        accepted: best_accepted
            .iter()
            .map(|&i| candidates[i].clone())
            .collect(),
        candidates,
        total_ops,
        cache_param: options.cache_param.clone(),
        degradation: first_interrupt.map(|interrupt| Degradation {
            interrupt,
            sweep_completed,
            sweep_total,
        }),
    })
}

/// Pure-arithmetic fallback for an interrupted combination: the single
/// non-trivial candidate with the highest instance value. Needs no engine
/// queries, so it cannot trip the budget again.
fn best_single_candidate(candidates: &[LowerBound], instances: &[Instance]) -> (Expr, Vec<usize>) {
    let mut best: Option<(f64, usize)> = None;
    for (i, candidate) in candidates.iter().enumerate() {
        if candidate.is_trivial() {
            continue;
        }
        for inst in instances {
            let value = candidate.evaluate(inst);
            if best.is_none_or(|(best_value, _)| value > best_value) {
                best = Some((value, i));
            }
        }
    }
    match best {
        Some((_, i)) => (candidates[i].expr.clone().max_with_zero(), vec![i]),
        None => (Expr::zero(), Vec::new()),
    }
}

/// Derives every candidate bound for one (parametrization depth, statement)
/// pair: the K-partition bounds of the shrinking-working-copy rounds and, for
/// parametrized depths, the wavefront bound.
fn derive_candidates(
    dfg: &Dfg,
    options: &AnalysisOptions,
    depth: usize,
    stmt_name: &str,
) -> Vec<LowerBound> {
    let ctx = &options.ctx;
    let mut candidates: Vec<LowerBound> = Vec::new();
    let Some(stmt) = dfg.node(stmt_name) else {
        return candidates;
    };

    // Parametrize the outermost `depth` dimensions (Sec. 4.3).
    let omegas: Vec<String> = (0..depth).map(|k| format!("Omega{k}")).collect();
    let mut parametrized_domain = stmt.domain.clone();
    for (k, om) in omegas.iter().enumerate() {
        parametrized_domain = parametrized_domain.fix_dim_to_param(k, om);
    }
    let parametrized_dfg = if depth == 0 {
        dfg.clone()
    } else {
        restrict_statement(dfg, &stmt.name, &parametrized_domain)
    };

    // --- K-partition bounds on a shrinking working copy. ---
    let mut working = parametrized_dfg.clone();
    for _round in 0..options.max_rounds_per_statement {
        let Some(node) = working.node(&stmt.name) else {
            break;
        };
        let mut ds = node.domain.clone();
        if ds.is_empty() {
            break;
        }
        let all_paths = genpaths(&working, &stmt.name, &ds, &options.genpaths);
        if all_paths.is_empty() {
            break;
        }
        // Incrementally add paths whose kernel changes the lattice and
        // whose domain keeps covering a γ-fraction of D_S.
        let dim = ds.dim();
        let mut lattice = Lattice::new(dim);
        let mut selected: Vec<DfgPath> = Vec::new();
        for p in &all_paths {
            let path_dom = p.relation.range();
            let candidate_ds = ds.intersect(&path_dom);
            if !covers_gamma_fraction(&candidate_ds, &stmt.domain, ctx, options) {
                continue;
            }
            // Cap the lattice size: a handful of reuse directions is
            // enough for a tight exponent, and very large lattices
            // make the exact-rational LP blow up (the analogue of the
            // paper's projection-count time-out).
            let saved_lattice = lattice.clone();
            match lattice.insert_closure(&p.kernel(), options.lattice_budget) {
                Ok(true) => {
                    if lattice.len() > 24 && !selected.is_empty() {
                        lattice = saved_lattice;
                        continue;
                    }
                    ds = candidate_ds;
                    selected.push(p.clone());
                }
                Ok(false) => {
                    // Kernel already represented: the path adds an
                    // extra projection with an existing kernel; keep
                    // it only if it could improve interference
                    // coefficients (same-kernel duplicates rarely do).
                }
                Err(_) => {
                    // Lattice budget exhausted: skip this path.
                }
            }
        }
        if selected.is_empty() {
            break;
        }
        let pin = PartitionInput {
            paths: &selected,
            domain: &ds,
            lattice: &lattice,
            ctx,
            cache_param: &options.cache_param,
        };
        let Some(bound) = partition_bound(&pin) else {
            break;
        };
        let spill = bound.may_spill.clone();
        candidates.push(finalize(bound, depth, &omegas, &stmt.domain, dfg, ctx));
        // Shrink the working DFG and try to find another combination
        // (this is what decomposes lu / floyd-warshall per statement).
        working = working.restrict_domains(&spill);
    }

    // --- Wavefront bound for parametrized depths. ---
    if depth >= 1 {
        // The wavefront needs the advanced dimension to remain free in
        // the DFG (the step relation crosses slices), so only the
        // dimensions *before* it are restricted; the slice domain
        // additionally pins the advanced dimension to its Ω.
        let mut outer_domain = stmt.domain.clone();
        for (k, om) in omegas.iter().enumerate().take(depth - 1) {
            outer_domain = outer_domain.fix_dim_to_param(k, om);
        }
        let wavefront_dfg = if depth >= 2 {
            restrict_statement(dfg, &stmt.name, &outer_domain)
        } else {
            dfg.clone()
        };
        let win = WavefrontInput {
            dfg: &wavefront_dfg,
            statement: &stmt.name,
            slice_domain: &parametrized_domain,
            advance_dim: depth - 1,
            ctx,
            cache_param: &options.cache_param,
        };
        if let Some(bound) = wavefront_bound(&win) {
            candidates.push(finalize(bound, depth, &omegas, &stmt.domain, dfg, ctx));
        }
    }
    candidates
}

fn instances_or_default(options: &AnalysisOptions) -> Vec<Instance> {
    if options.instances.is_empty() {
        vec![Instance::new().set(&options.cache_param, 512)]
    } else {
        options.instances.clone()
    }
}

/// Restricts a statement's domain in a copy of the DFG (used for the
/// loop-parametrized slices).
fn restrict_statement(dfg: &Dfg, statement: &str, new_domain: &iolb_poly::BasicSet) -> Dfg {
    // Remove everything outside the new domain.
    let outside = dfg
        .node(statement)
        .map(|n| n.domain.to_set().subtract(&new_domain.to_set()))
        .unwrap_or_else(|| new_domain.to_set());
    let mut removal = UnionSet::empty();
    removal.add_set(outside);
    dfg.restrict_domains(&removal)
}

/// Post-processes a per-slice bound: for parametrized depths, sums it over
/// the slicing parameters; attaches an instance-independent may-spill set.
fn finalize(
    bound: LowerBound,
    depth: usize,
    omegas: &[String],
    statement_domain: &iolb_poly::BasicSet,
    dfg: &Dfg,
    ctx: &Context,
) -> LowerBound {
    if depth == 0 {
        return bound;
    }
    let mut current = bound;
    // Wavefront bounds connect slice Ω to slice Ω + 1, so the innermost
    // summation stops one slice early.
    let innermost = omegas.len().saturating_sub(1);
    // Sum innermost parametrized dimension first.
    for (k, omega) in omegas.iter().enumerate().rev() {
        let hi_offset = if k == innermost && current.technique == crate::bound::Technique::Wavefront
        {
            -1
        } else {
            0
        };
        match sum_over_parameter(&current, omega, statement_domain, k, hi_offset, ctx) {
            Some(summed) => current = summed,
            None => {
                // Could not safely sum over the slices: fall back to a single
                // representative slice, instantiated at the loop's lower
                // bound, which is still a valid bound for the whole program.
                let lo = dim_bounds(statement_domain, k, ctx)
                    .map(|(lo, _)| lo)
                    .unwrap_or_else(iolb_symbol::Poly::zero);
                current = LowerBound {
                    expr: current.expr.substitute(omega, &lo),
                    may_spill: spill_of_whole_statement(dfg, &current.statement),
                    ..current
                };
            }
        }
    }
    current
}

fn spill_of_whole_statement(dfg: &Dfg, statement: &str) -> UnionSet {
    let mut ms = UnionSet::empty();
    if let Some(n) = dfg.node(statement) {
        ms.add_set(n.domain.to_set());
    }
    ms
}

/// Checks that a candidate domain still covers at least a γ-fraction of the
/// statement domain, evaluated on a representative instance (the heuristic of
/// Algorithm 6, line 12).
fn covers_gamma_fraction(
    candidate: &iolb_poly::BasicSet,
    full: &iolb_poly::BasicSet,
    ctx: &Context,
    options: &AnalysisOptions,
) -> bool {
    let (num, den) = options.gamma;
    let engine = iolb_poly::EngineCtx::current();
    let Some(cand_card) = count::card_basic_in(&engine, candidate, ctx) else {
        return !candidate.is_empty();
    };
    let Some(full_card) = count::card_basic_in(&engine, full, ctx) else {
        return !candidate.is_empty();
    };
    let env: std::collections::BTreeMap<String, f64> = full_card
        .params()
        .into_iter()
        .chain(cand_card.params())
        .map(|p| (p, 64.0))
        .collect();
    let c = cand_card.eval_f64(&env).unwrap_or(0.0);
    let f = full_card.eval_f64(&env).unwrap_or(1.0);
    c * den as f64 >= f * num as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> Dfg {
        Dfg::builder()
            .input("A", "[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
            .input("B", "[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
            .input("Cin", "[Ni, Nj] -> { Cin[i, j] : 0 <= i < Ni and 0 <= j < Nj }")
            .statement_with_ops(
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
                2,
            )
            .edge(
                "A",
                "C",
                "[Ni, Nj, Nk] -> { A[i, k] -> C[i2, j, k2] : i2 = i and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            )
            .edge(
                "B",
                "C",
                "[Ni, Nj, Nk] -> { B[k, j] -> C[i, j2, k2] : j2 = j and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            )
            .edge(
                "Cin",
                "C",
                "[Ni, Nj, Nk] -> { Cin[i, j] -> C[i2, j2, k] : i2 = i and j2 = j and k = 0 and 0 <= i < Ni and 0 <= j < Nj }",
            )
            .edge(
                "C",
                "C",
                "[Ni, Nj, Nk] -> { C[i, j, k] -> C[i2, j2, k + 1] : i2 = i and j2 = j and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk - 1 }",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_analysis_matches_table1() {
        let g = gemm();
        let mut options = AnalysisOptions::with_default_instance(&["Ni", "Nj", "Nk"], 512, 1024);
        options.max_parametrization_depth = 0;
        let analysis = analyze(&g, &options);
        // Leading term of Q_low must be 2·Ni·Nj·Nk/√S (Table 2, gemm).
        let lead = analysis.q_asymptotic();
        assert_eq!(lead.to_string(), "2*Ni*Nj*Nk*S^(-1/2)");
        // OI_up = #ops / Q∞ = √S.
        let ops = analysis.total_ops.clone().unwrap();
        let oi = iolb_symbol::asymptotic::asymptotic_ratio(&ops, &analysis.q_low, "S").unwrap();
        assert_eq!(oi.to_string(), "S^(1/2)");
        // The bound includes the compulsory misses.
        assert_eq!(analysis.input_size.to_string(), "Ni*Nj + Ni*Nk + Nj*Nk");
    }

    #[test]
    fn budget_tripping_before_any_bound_is_a_hard_error() {
        use iolb_poly::{Budget, EngineCtx, EngineInterrupt};

        let engine = EngineCtx::new();
        // One FM step cannot even finish the compulsory-miss term, so no
        // valid bound exists and the interrupt surfaces as an error. The
        // DFG and options are built inside the scope (session binding).
        engine.install_budget(Budget::none().max_fm_steps(1));
        let result = engine.scope(|| {
            let g = gemm();
            let mut options =
                AnalysisOptions::with_default_instance(&["Ni", "Nj", "Nk"], 512, 1024);
            options.max_parametrization_depth = 0;
            options.parallel = false;
            analyze_interruptible(&g, &options)
        });
        assert_eq!(result.unwrap_err(), EngineInterrupt::FmSteps { limit: 1 });
    }

    #[test]
    fn budget_tripping_mid_sweep_degrades_but_keeps_the_input_term() {
        use iolb_poly::{Budget, EngineCtx};

        fn serial_gemm_options() -> AnalysisOptions {
            let mut options =
                AnalysisOptions::with_default_instance(&["Ni", "Nj", "Nk"], 512, 1024);
            options.max_parametrization_depth = 0;
            options.parallel = false;
            options
        }

        // Measure (in throwaway cold sessions) how many FM steps the
        // compulsory-miss term alone needs, and how many the full analysis
        // needs; a limit between the two trips mid-sweep deterministically.
        // Every session builds its own DFG and options (session binding).
        let probe = EngineCtx::new();
        let input_steps = probe.scope(|| {
            let _ = input_size(&gemm(), &serial_gemm_options().ctx);
            probe.stats().FM_ELIMINATIONS
        });
        let full = EngineCtx::new();
        let (full_steps, full_input, full_degradation) = full.scope(|| {
            let analysis = analyze(&gemm(), &serial_gemm_options());
            (
                full.stats().FM_ELIMINATIONS,
                analysis.input_size.to_string(),
                analysis.degradation,
            )
        });
        assert!(
            full_steps > input_steps + 1,
            "gemm's candidate sweep must dominate the step count"
        );
        assert!(full_degradation.is_none());
        let limit = input_steps + (full_steps - input_steps) / 2;

        let engine = EngineCtx::new();
        engine.install_budget(Budget::none().max_fm_steps(limit));
        let degraded = engine
            .scope(|| analyze_interruptible(&gemm(), &serial_gemm_options()))
            .expect("interrupt after the input term must degrade, not fail");
        let degradation = degraded.degradation.expect("budget tripped mid-sweep");
        assert_eq!(degradation.interrupt.code(), "fm_steps");
        assert!(degradation.sweep_total > 0);
        assert!(degradation.sweep_completed < degradation.sweep_total);
        // The degraded bound still carries the compulsory-miss term — a
        // valid (if weaker) lower bound.
        assert_eq!(degraded.input_size.to_string(), full_input);
    }

    #[test]
    fn streaming_kernel_gets_input_size_bound() {
        // A pure streaming kernel (no reuse): Q_low should be the input size.
        let g = Dfg::builder()
            .input("X", "[N] -> { X[i] : 0 <= i < N }")
            .statement("S", "[N] -> { S[i] : 0 <= i < N }")
            .edge("X", "S", "[N] -> { X[i] -> S[i2] : i2 = i and 0 <= i < N }")
            .build()
            .unwrap();
        let options = AnalysisOptions::with_default_instance(&["N"], 1024, 128);
        let analysis = analyze(&g, &options);
        assert_eq!(analysis.q_asymptotic().to_string(), "N");
        let v = analysis
            .q_at(&Instance::from_pairs(&[("N", 1000), ("S", 128)]))
            .unwrap();
        assert!(v >= 1000.0);
    }
}
