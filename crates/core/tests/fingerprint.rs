//! Property tests for the analysis-fingerprint canonicalization
//! (`Analyzer::fingerprint`): everything the normal form erases —
//! whitespace, comments, knob ordering — must not move the fingerprint,
//! while every semantic edit — an option, a parameter value, an access
//! function — must.
//!
//! The perturbations are driven by a small seeded generator rather than
//! a fixed enumeration, so each run covers a few hundred distinct
//! spellings while staying reproducible from the printed seed.

use iolb_core::{AnalysisFingerprint, Analyzer, PreparedWorkload, Workload, WorkloadError};
use iolb_frontend::IolbSource;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A workload that exists only as its cache key: `fingerprint` never
/// prepares, so the knob-canonicalization properties need nothing more.
struct Keyed(&'static str);

impl Workload for Keyed {
    fn prepare(&self) -> Result<PreparedWorkload, WorkloadError> {
        Err(WorkloadError::new("fingerprint-only test workload"))
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("test:{}", self.0))
    }
}

const BASE: &str = "\
parameter Ni, Nj, Nk;
double A[Ni][Nk];
double B[Nk][Nj];
double C[Ni][Nj];
for (i = 0; i < Ni; i++)
  for (j = 0; j < Nj; j++)
    for (k = 0; k < Nk; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
";

/// Rewrites `src` with randomized whitespace and comments at token-safe
/// positions: every space may widen, gain a tab, or become an inline
/// block comment; lines may gain trailing `//`/`#` comments, leading
/// indentation, blank lines, or standalone block comments between them.
fn perturb_lexically(src: &str, rng: &mut Rng) -> String {
    let mut out = String::new();
    for line in src.lines() {
        if rng.below(4) == 0 {
            out.push('\n');
        }
        if rng.below(5) == 0 {
            out.push_str("/* leading\n   block comment */\n");
        }
        if rng.below(3) == 0 {
            out.push_str("\t ");
        }
        for ch in line.chars() {
            if ch == ' ' {
                match rng.below(5) {
                    0 => out.push(' '),
                    1 => out.push_str("  "),
                    2 => out.push_str(" \t "),
                    3 => out.push_str("   "),
                    _ => out.push_str(" /* c */ "),
                }
            } else {
                out.push(ch);
            }
        }
        match rng.below(4) {
            0 => out.push_str("  // trailing note"),
            1 => out.push_str("  # hash note"),
            _ => {}
        }
        out.push('\n');
    }
    out
}

fn fp_of_source(src: &str) -> AnalysisFingerprint {
    Analyzer::new()
        .fingerprint(&IolbSource::named("prog", src))
        .expect("parseable source is cacheable")
}

#[test]
fn lexical_perturbations_never_move_the_fingerprint() {
    let seed = 0x5eed_0007;
    let mut rng = Rng::new(seed);
    let base = fp_of_source(BASE);
    for round in 0..64 {
        let mutated = perturb_lexically(BASE, &mut rng);
        assert_eq!(
            fp_of_source(&mutated),
            base,
            "seed {seed:#x} round {round}: whitespace/comment perturbation \
             moved the fingerprint:\n{mutated}"
        );
    }
}

#[test]
fn semantic_source_edits_always_move_the_fingerprint() {
    // Each mutation is `BASE` with one semantic edit; all must produce
    // distinct fingerprints (128-bit: collisions would be a bug, not luck).
    let mutations: &[(&str, &str)] = &[
        ("transposed access", "A[k][i]"), // was A[i][k]
        ("different operand", "B[k][k]"), // was B[k][j]
    ];
    let base = fp_of_source(BASE);
    let mut seen = vec![base];
    for (what, replacement) in mutations {
        let src = match *what {
            "transposed access" => BASE.replace("A[i][k]", replacement),
            _ => BASE.replace("B[k][j]", replacement),
        };
        let fp = fp_of_source(&src);
        assert!(
            !seen.contains(&fp),
            "{what}: fingerprint did not move on a semantic edit"
        );
        seen.push(fp);
    }
    // Loop-bound, comparison-op, and name edits, straight substitutions.
    for (from, to) in [
        ("i < Ni", "i <= Ni"),
        ("k = 0", "k = 1"),
        ("double B[Nk][Nj]", "double B[Nk][Ni]"),
        ("C[i][j] = C[i][j] +", "C[i][j] = C[i][j] -"),
    ] {
        let fp = fp_of_source(&BASE.replace(from, to));
        assert!(
            !seen.contains(&fp),
            "`{from}` -> `{to}`: fingerprint did not move"
        );
        seen.push(fp);
    }
    // The report name is part of the content address.
    let renamed = Analyzer::new()
        .fingerprint(&IolbSource::named("other", BASE))
        .unwrap();
    assert!(!seen.contains(&renamed), "report name must be hashed");
}

#[test]
fn knob_order_is_canonicalized_but_knob_values_are_not() {
    let w = Keyed("knobs");
    let seed = 0x5eed_0011_u64;
    let mut rng = Rng::new(seed);
    let knobs: [(&str, i128); 4] = [("Ni", 2000), ("Nj", 1500), ("Nk", 800), ("S", 4096)];
    let reference = {
        let mut a = Analyzer::new();
        for (name, value) in knobs {
            a = a.param(name, value).assume_ge(name, 8);
        }
        a.fingerprint(&w).unwrap()
    };
    for round in 0..64 {
        // A random permutation (Fisher–Yates), applied independently to
        // the `.param()` and `.assume_ge()` call orders, with a random
        // prefix of overridden-then-corrected params (last-wins).
        let mut order: Vec<usize> = (0..knobs.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut a = Analyzer::new();
        for &i in &order {
            if rng.below(3) == 0 {
                // Stale value, immediately superseded below.
                a = a.param(knobs[i].0, -7);
            }
            a = a.param(knobs[i].0, knobs[i].1);
        }
        for &i in order.iter().rev() {
            a = a.assume_ge(knobs[i].0, 8);
        }
        assert_eq!(
            a.fingerprint(&w).unwrap(),
            reference,
            "seed {seed:#x} round {round}: knob order moved the fingerprint"
        );
    }
    // Value and option edits must all move it, each differently.
    let mut distinct = vec![reference];
    let variants: Vec<Analyzer> = vec![
        Analyzer::new().param("Ni", 2000),
        Analyzer::new().param("Ni", 1999),
        Analyzer::new().param("Ni", 2000).assume_ge("Ni", 8),
        Analyzer::new().param("Ni", 2000).assume_ge("Ni", 16),
        Analyzer::new()
            .param("Ni", 2000)
            .max_parametrization_depth(1),
        Analyzer::new().param("Ni", 2000).cache_size(16_384),
        Analyzer::new().param("Ni", 2000).cache_param("S2"),
    ];
    for (i, a) in variants.into_iter().enumerate() {
        let fp = a.fingerprint(&w).unwrap();
        assert!(!distinct.contains(&fp), "variant {i} collided");
        distinct.push(fp);
    }
}

#[test]
fn execution_knobs_are_excluded_and_overrides_opt_out() {
    let w = Keyed("exec");
    let base = Analyzer::new().fingerprint(&w).unwrap();
    // Parallelism and session-cache sizing cannot change the report bytes
    // (engine equivalence), so they must not fragment the cache.
    assert_eq!(Analyzer::new().parallel(false).fingerprint(&w), Some(base));
    assert_eq!(
        Analyzer::new().cache_capacity(128).fingerprint(&w),
        Some(base)
    );
    assert_eq!(
        Analyzer::new().cache_enabled(false).fingerprint(&w),
        Some(base)
    );
    // Budgets can only produce degraded (never-stored) results, so they
    // share the fingerprint of the clean run that will fill the entry.
    assert_eq!(
        Analyzer::new()
            .deadline(std::time::Duration::from_millis(5))
            .fingerprint(&w),
        Some(base)
    );
    // Wholesale options replacement carries session-bound context the
    // fingerprint cannot see: uncacheable by design.
    let opts = Analyzer::default_options_for(&["N".to_string()]);
    assert_eq!(Analyzer::new().options(opts).fingerprint(&w), None);
    // So is a workload with no canonical key.
    struct Keyless;
    impl Workload for Keyless {
        fn prepare(&self) -> Result<PreparedWorkload, WorkloadError> {
            Err(WorkloadError::new("unused"))
        }
    }
    assert_eq!(Analyzer::new().fingerprint(&Keyless), None);
}

#[test]
fn kernels_and_files_share_the_canonical_address_space() {
    let gemm = iolb_polybench::kernel_by_name("gemm").unwrap();
    let atax = iolb_polybench::kernel_by_name("atax").unwrap();
    let a = Analyzer::new();
    let fp_gemm = a.fingerprint(&gemm).unwrap();
    assert_eq!(a.fingerprint(&gemm), Some(fp_gemm), "kernel fp is stable");
    assert_ne!(a.fingerprint(&atax), Some(fp_gemm), "kernels are distinct");

    // A file and an equal in-memory source under the same name share a
    // fingerprint: the key is (name, canonical program), not the path.
    let dir = std::env::temp_dir().join(format!(
        "iolb-fp-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.iolb");
    std::fs::write(&path, BASE).unwrap();
    let from_file = a.fingerprint(&iolb_frontend::IolbFile::new(&path));
    let from_src = a.fingerprint(&IolbSource::named("prog", BASE));
    assert_eq!(from_file, from_src);
    assert!(from_file.is_some());
    std::fs::remove_dir_all(&dir).ok();
}
