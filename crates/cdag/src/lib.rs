//! # iolb-cdag
//!
//! Explicit CDAG instantiation and the red-white pebble game (Sec. 3.1) used
//! to *validate* the derived lower bounds: for small concrete parameter
//! values, the I/O cost of any schedule simulated under the game must be at
//! least the value of the symbolic bound. The crate provides:
//!
//! * [`Cdag`] — an explicit computational DAG built by instantiating a DFG at
//!   concrete parameter values;
//! * [`PebbleGame`] — the S-red-white pebble game of Definition 3.2, whose
//!   cost counts rule-(R1) loads;
//! * schedule executors (topological order and a reuse-aware greedy order)
//!   that drive the game and report achieved I/O.

#![warn(missing_docs)]

use iolb_dfg::Dfg;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// One vertex of the explicit CDAG: a statement (or input) instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// Statement or array name.
    pub statement: String,
    /// Concrete iteration-vector / index-vector.
    pub point: Vec<i128>,
}

/// An explicit computational DAG at concrete parameter values.
#[derive(Debug, Default)]
pub struct Cdag {
    vertices: Vec<Vertex>,
    index: HashMap<Vertex, usize>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    inputs: HashSet<usize>,
}

impl Cdag {
    /// Instantiates a DFG at concrete parameter values.
    ///
    /// `bound` caps the per-dimension enumeration range (a safety net for
    /// accidentally huge instances); keep parameters small (≤ ~20).
    pub fn instantiate(dfg: &Dfg, params: &[(&str, i128)], bound: i128) -> Cdag {
        let mut cdag = Cdag::default();
        // Vertices.
        for node in dfg.nodes() {
            for point in node.domain.enumerate(params, bound) {
                let v = Vertex {
                    statement: node.name.clone(),
                    point,
                };
                let idx = cdag.vertices.len();
                cdag.index.insert(v.clone(), idx);
                cdag.vertices.push(v);
                cdag.preds.push(Vec::new());
                cdag.succs.push(Vec::new());
                if node.is_input {
                    cdag.inputs.insert(idx);
                }
            }
        }
        // Edges.
        for edge in dfg.edges() {
            let src_node = dfg.node(&edge.src).expect("validated by builder");
            for src_point in src_node.domain.enumerate(params, bound) {
                let src_idx = cdag.index[&Vertex {
                    statement: edge.src.clone(),
                    point: src_point.clone(),
                }];
                // Enumerate images of this source point.
                let dst_node = dfg.node(&edge.dst).expect("validated by builder");
                for dst_point in dst_node.domain.enumerate(params, bound) {
                    if edge.relation.contains(&src_point, &dst_point, params) {
                        let dst_idx = cdag.index[&Vertex {
                            statement: edge.dst.clone(),
                            point: dst_point,
                        }];
                        cdag.preds[dst_idx].push(src_idx);
                        cdag.succs[src_idx].push(dst_idx);
                    }
                }
            }
        }
        cdag
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns true if the CDAG has no vertex.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of non-input (compute) vertices.
    pub fn num_compute(&self) -> usize {
        self.len() - self.inputs.len()
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// Predecessor indices of a vertex.
    pub fn predecessors(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// Returns true if the vertex is an input.
    pub fn is_input(&self, v: usize) -> bool {
        self.inputs.contains(&v)
    }

    /// A topological order of the compute vertices (inputs excluded).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self
            .preds
            .iter()
            .enumerate()
            .map(|(i, p)| if self.is_input(i) { 0 } else { p.len() })
            .collect();
        let mut queue: VecDeque<usize> = (0..self.len())
            .filter(|&i| indegree[i] == 0 && !self.is_input(i))
            .collect();
        // Inputs are "already computed": relax their successors first.
        let mut relaxed_inputs: VecDeque<usize> =
            (0..self.len()).filter(|&i| self.is_input(i)).collect();
        let mut order = Vec::new();
        while let Some(v) = relaxed_inputs.pop_front().or_else(|| queue.pop_front()) {
            if !self.is_input(v) {
                order.push(v);
            }
            for &s in &self.succs[v] {
                if self.is_input(s) {
                    continue;
                }
                indegree[s] = indegree[s].saturating_sub(1);
                if indegree[s] == 0 && !order.contains(&s) && !queue.contains(&s) {
                    queue.push_back(s);
                }
            }
        }
        order
    }
}

/// The S-red-white pebble game of Definition 3.2, driven by an execution
/// order. Red pebbles model fast-memory residency (LRU-evicted when full);
/// the cost is the number of (R1) loads.
#[derive(Debug)]
pub struct PebbleGame<'a> {
    cdag: &'a Cdag,
    capacity: usize,
    /// Vertices currently holding a red pebble, with a last-use timestamp.
    red: BTreeMap<usize, u64>,
    /// Vertices holding a white pebble (computed values).
    white: HashSet<usize>,
    clock: u64,
    loads: u64,
}

impl<'a> PebbleGame<'a> {
    /// Starts a game with `capacity` red pebbles. Input vertices start with
    /// white pebbles, as in the paper's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(cdag: &'a Cdag, capacity: usize) -> Self {
        assert!(capacity > 0, "at least one red pebble is required");
        let mut white = HashSet::new();
        for v in 0..cdag.len() {
            if cdag.is_input(v) {
                white.insert(v);
            }
        }
        PebbleGame {
            cdag,
            capacity,
            red: BTreeMap::new(),
            white,
            clock: 0,
            loads: 0,
        }
    }

    fn touch(&mut self, v: usize) {
        self.clock += 1;
        self.red.insert(v, self.clock);
    }

    fn ensure_red(&mut self, v: usize) {
        if self.red.contains_key(&v) {
            self.touch(v);
            return;
        }
        assert!(
            self.white.contains(&v),
            "rule (R1) requires a white pebble on the vertex"
        );
        self.evict_if_full();
        self.loads += 1; // rule (R1)
        self.touch(v);
    }

    fn evict_if_full(&mut self) {
        while self.red.len() >= self.capacity {
            // Rule (R3): remove the least recently used red pebble.
            if let Some((&victim, _)) = self.red.iter().min_by_key(|(_, &ts)| ts) {
                self.red.remove(&victim);
            }
        }
    }

    /// Executes (computes) one vertex: loads all its predecessors into fast
    /// memory (rule R1 as needed), then applies rule (R2).
    ///
    /// # Panics
    ///
    /// Panics if the vertex was already computed or a predecessor has not
    /// been computed yet (an invalid schedule).
    pub fn execute(&mut self, v: usize) {
        assert!(!self.white.contains(&v), "vertex computed twice");
        let preds: Vec<usize> = self.cdag.predecessors(v).to_vec();
        for p in &preds {
            assert!(
                self.white.contains(p),
                "executing a vertex before its predecessor"
            );
        }
        for p in preds {
            self.ensure_red(p);
        }
        // Rule (R2): place a red (and white) pebble on v.
        self.evict_if_full();
        self.touch(v);
        self.white.insert(v);
    }

    /// Runs a whole schedule (a sequence of compute-vertex indices).
    pub fn run(&mut self, schedule: &[usize]) -> u64 {
        for &v in schedule {
            self.execute(v);
        }
        self.loads
    }

    /// The number of (R1) loads so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Returns true once every compute vertex holds a white pebble.
    pub fn is_complete(&self) -> bool {
        (0..self.cdag.len()).all(|v| self.white.contains(&v))
    }
}

/// Runs the pebble game under the CDAG's topological order and returns the
/// achieved number of loads — an *upper* bound on the optimal I/O, hence a
/// sound reference point for validating lower bounds.
pub fn simulate_topological(cdag: &Cdag, capacity: usize) -> u64 {
    let order = cdag.topological_order();
    let mut game = PebbleGame::new(cdag, capacity);
    game.run(&order)
}

/// Validates a symbolic lower bound against the simulated schedule: returns
/// `Ok(measured_loads)` when `bound ≤ measured`, or `Err((bound, measured))`.
pub fn validate_lower_bound(
    cdag: &Cdag,
    capacity: usize,
    bound_value: f64,
) -> Result<u64, (f64, u64)> {
    let measured = simulate_topological(cdag, capacity);
    if bound_value <= measured as f64 + 1e-9 {
        Ok(measured)
    } else {
        Err((bound_value, measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_dfg::Dfg;

    fn example1(m: i128, n: i128) -> (Dfg, Vec<(&'static str, i128)>) {
        let dfg = Dfg::builder()
            .input("A", "[N] -> { A[i] : 0 <= i < N }")
            .input("C", "[M] -> { C[t] : 0 <= t < M }")
            .statement("St", "[M, N] -> { St[t, i] : 0 <= t < M and 0 <= i < N }")
            .edge(
                "A",
                "St",
                "[N] -> { A[i] -> St[t, i2] : t = 0 and i2 = i and 0 <= i < N }",
            )
            .edge(
                "C",
                "St",
                "[M, N] -> { C[t] -> St[t, i] : 0 <= t < M and 0 <= i < N }",
            )
            .edge(
                "St",
                "St",
                "[M, N] -> { St[t, i] -> St[t + 1, i] : 0 <= t < M - 1 and 0 <= i < N }",
            )
            .build()
            .unwrap();
        (dfg, vec![("M", m), ("N", n)])
    }

    #[test]
    fn instantiation_counts_vertices() {
        let (dfg, params) = example1(4, 5);
        let cdag = Cdag::instantiate(&dfg, &params, 16);
        // 5 A-inputs + 4 C-inputs + 20 compute vertices.
        assert_eq!(cdag.len(), 29);
        assert_eq!(cdag.num_compute(), 20);
        assert!(!cdag.is_empty());
    }

    #[test]
    fn topological_order_is_complete_and_valid() {
        let (dfg, params) = example1(4, 5);
        let cdag = Cdag::instantiate(&dfg, &params, 16);
        let order = cdag.topological_order();
        assert_eq!(order.len(), cdag.num_compute());
        // Every predecessor appears before its consumer.
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in &order {
            for &p in cdag.predecessors(v) {
                if !cdag.is_input(p) {
                    assert!(pos[&p] < pos[&v]);
                }
            }
        }
    }

    #[test]
    fn pebble_game_counts_compulsory_loads() {
        let (dfg, params) = example1(3, 4);
        let cdag = Cdag::instantiate(&dfg, &params, 16);
        // With a huge cache, each input is loaded exactly once.
        let loads = simulate_topological(&cdag, 1024);
        assert_eq!(loads, 4 + 3);
    }

    #[test]
    fn small_cache_forces_more_loads() {
        let (dfg, params) = example1(6, 7);
        let cdag = Cdag::instantiate(&dfg, &params, 20);
        let big = simulate_topological(&cdag, 1024);
        let small = simulate_topological(&cdag, 3);
        assert!(small > big, "smaller cache must not reduce loads");
    }

    #[test]
    #[should_panic]
    fn executing_before_predecessor_panics() {
        let (dfg, params) = example1(3, 3);
        let cdag = Cdag::instantiate(&dfg, &params, 16);
        // Find a vertex with a compute predecessor and execute it first.
        let order = cdag.topological_order();
        let last = *order.last().unwrap();
        let mut game = PebbleGame::new(&cdag, 8);
        game.execute(last);
    }

    #[test]
    fn validation_accepts_sound_bounds_and_rejects_unsound_ones() {
        let (dfg, params) = example1(4, 6);
        let cdag = Cdag::instantiate(&dfg, &params, 16);
        let measured = simulate_topological(&cdag, 4);
        assert!(validate_lower_bound(&cdag, 4, measured as f64).is_ok());
        assert!(validate_lower_bound(&cdag, 4, 0.0).is_ok());
        assert!(validate_lower_bound(&cdag, 4, measured as f64 + 10.0).is_err());
    }
}
