//! # iolb
//!
//! A pure-Rust reproduction of *Automated Derivation of Parametric Data
//! Movement Lower Bounds for Affine Programs* (IOLB, PLDI 2020).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`math`] — exact rationals, linear algebra, subgroup lattices, LP and
//!   the Brascamp–Lieb exponent optimiser;
//! * [`symbol`] — symbolic parametric expressions (`√S`, `max`, Faulhaber
//!   summation, asymptotic simplification);
//! * [`poly`] — parametric integer sets/relations with symbolic counting and
//!   an ISL-like notation parser;
//! * [`frontend`] — the affine-C (`.iolb`) language: parser, semantic checks
//!   and lowering, so arbitrary user programs can be analysed (the `iolb`
//!   CLI in `crates/cli` drives it);
//! * [`ir`] — a small polyhedral program IR lowered to data-flow graphs,
//!   including generalized value-based flow-dependence analysis
//!   ([`ir::dataflow`]);
//! * [`dfg`] — data-flow graphs, DFG-path generation and classification;
//! * [`core`] — the IOLB analysis itself (K-partition and wavefront bounds,
//!   CDAG decomposition, the Algorithm-6 driver, OI bounds and reports);
//! * [`cdag`] — explicit CDAG instantiation and the red-white pebble game for
//!   validating bounds on small instances;
//! * [`cachesim`] — an LRU / Belady two-level memory simulator for measuring
//!   achieved OI of reference schedules;
//! * [`polybench`] — the 30 PolyBench/C 4.2 kernels with Table-1 metadata and
//!   reference schedules.
//!
//! ## Quick start
//!
//! The [`Analyzer`] is the front door: a builder that runs each analysis in
//! its own isolated **engine session** and accepts any [`Workload`] — a
//! built-in PolyBench kernel, a polyhedral [`ir::Program`], or affine-C
//! source (`frontend::IolbSource` / `frontend::IolbFile`):
//!
//! ```
//! use iolb::prelude::*;
//!
//! let gemm = iolb::polybench::kernel_by_name("gemm").unwrap();
//! let outcome = Analyzer::new().analyze(&gemm).unwrap();
//! assert_eq!(
//!     outcome.analysis().q_asymptotic().to_string(),
//!     "2*Ni*Nj*Nk*S^(-1/2)"
//! );
//! // Per-session engine statistics: this analysis alone.
//! assert!(outcome.stats.FEASIBILITY_CHECKS > 0);
//! let oi = outcome.report.oi.as_ref().unwrap();
//! assert_eq!(oi.oi_up.as_ref().unwrap().to_string(), "S^(1/2)");
//! ```
//!
//! Arbitrary affine programs enter through the affine-C front end (or the
//! `iolb` CLI: `iolb analyze file.iolb`):
//!
//! ```
//! use iolb::prelude::*;
//! use iolb::frontend::IolbSource;
//!
//! let outcome = Analyzer::new()
//!     .param("N", 1000)
//!     .cache_size(128)
//!     .analyze(&IolbSource::new(
//!         "parameter N; double A[N]; double s;\n\
//!          for (i = 0; i < N; i++) s += A[i];",
//!     ))
//!     .unwrap();
//! // A dot-product-style reduction is bandwidth-bound: Q ≥ input size.
//! assert_eq!(outcome.analysis().q_asymptotic().to_string(), "N");
//! ```
//!
//! ## Engine architecture: sessions, interning, caching, parallel driver
//!
//! The polyhedral engine under [`poly`] is built for the paper's headline
//! claim — whole-suite analysis in seconds — and for serving many
//! concurrent analyses, via four coordinated layers:
//!
//! * **Sessions** ([`poly::engine`]): all engine state — the parameter
//!   interner, the query cache, the op counters — lives in an explicit
//!   [`EngineCtx`] with configurable capacities. Two sessions share
//!   nothing: caches are freed when the session drops and statistics never
//!   bleed between concurrent users. The [`Analyzer`] creates (or reuses) a
//!   session per request; free-standing code runs against a scoped ambient
//!   session ([`EngineCtx::scope`]).
//! * **Interning** ([`poly::interner`]): every parameter name is interned
//!   once into the session's table, and an affine expression's parameter
//!   part is a compact sorted `Vec<(ParamId, i128)>`. The hot loops of
//!   Fourier–Motzkin elimination ([`poly::fm`]) are two-pointer merges over
//!   compact keys — no per-coefficient heap allocation or string
//!   comparison. Projection rounds deduplicate constraints structurally via
//!   128-bit fingerprints ([`poly::fxhash`]) so duplicates never feed the
//!   quadratic FM blowup.
//! * **Memoization** ([`poly::cache`]): feasibility, entailment and symbolic
//!   cardinality queries are memoized per session, keyed by fingerprints of
//!   the *exact* query inputs — a cached answer is bit-identical to
//!   recomputation, so the cache can never change a result. Capacity and
//!   enablement are per-session ([`EngineConfig`]); [`poly::stats`] counts
//!   operations and hit rates.
//! * **Parallel driver** ([`core::driver`]): candidate-bound derivation is
//!   independent per (parametrization depth, statement) pair, so
//!   `AnalysisOptions { parallel: true, .. }` (the default) fans those jobs
//!   out over OS threads ([`core::par`], which propagates the ambient
//!   session into every worker) and reassembles results in the
//!   deterministic serial order before the Lemma-4.2 combination — parallel
//!   and serial runs produce byte-identical `Q_low`.
//!
//! The perf trajectory is tracked by
//! `cargo run --release -p iolb-bench --bin perf_report`, which analyses all
//! 30 PolyBench kernels — each in its own session — and writes
//! `BENCH_analysis.json` (per-kernel wall-clock, per-session cache hit
//! rates, plus the summed engine-operation counters). Micro-benchmarks live
//! in `crates/bench/benches/analysis_time.rs` (`--features full-suite`
//! times every kernel).

#![warn(missing_docs)]

pub use iolb_cachesim as cachesim;
pub use iolb_cdag as cdag;
pub use iolb_core as core;
pub use iolb_dfg as dfg;
pub use iolb_frontend as frontend;
pub use iolb_ir as ir;
pub use iolb_math as math;
pub use iolb_poly as poly;
pub use iolb_polybench as polybench;
pub use iolb_symbol as symbol;

pub use iolb_core::{AnalysisOutcome, AnalyzeError, Analyzer, Workload};
pub use iolb_poly::{Budget, CancelToken, EngineConfig, EngineCtx, EngineInterrupt};

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use iolb_core::{
        analyze, analyze_interruptible, Analysis, AnalysisFingerprint, AnalysisOptions,
        AnalysisOutcome, AnalysisReply, AnalyzeError, Analyzer, CachePoint, Degradation,
        DiskTierConfig, GeneratedTrace, Instance, InstanceTightness, OiSummary, Regime, Report,
        ResultCache, ResultCacheConfig, TightnessOptions, TightnessReport, Workload,
    };
    pub use iolb_dfg::{genpaths, Dfg, GenPathsOptions};
    pub use iolb_poly::{
        parse_map, parse_set, Budget, CancelToken, EngineConfig, EngineCtx, EngineInterrupt,
    };
    pub use iolb_symbol::{Expr, Poly};
}
