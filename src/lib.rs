//! # iolb
//!
//! A pure-Rust reproduction of *Automated Derivation of Parametric Data
//! Movement Lower Bounds for Affine Programs* (IOLB, PLDI 2020).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`math`] — exact rationals, linear algebra, subgroup lattices, LP and
//!   the Brascamp–Lieb exponent optimiser;
//! * [`symbol`] — symbolic parametric expressions (`√S`, `max`, Faulhaber
//!   summation, asymptotic simplification);
//! * [`poly`] — parametric integer sets/relations with symbolic counting and
//!   an ISL-like notation parser;
//! * [`frontend`] — the affine-C (`.iolb`) language: parser, semantic checks
//!   and lowering, so arbitrary user programs can be analysed (the `iolb`
//!   CLI in `crates/cli` drives it);
//! * [`ir`] — a small polyhedral program IR lowered to data-flow graphs,
//!   including generalized value-based flow-dependence analysis
//!   ([`ir::dataflow`]);
//! * [`dfg`] — data-flow graphs, DFG-path generation and classification;
//! * [`core`] — the IOLB analysis itself (K-partition and wavefront bounds,
//!   CDAG decomposition, the Algorithm-6 driver, OI bounds and reports);
//! * [`cdag`] — explicit CDAG instantiation and the red-white pebble game for
//!   validating bounds on small instances;
//! * [`cachesim`] — an LRU / Belady two-level memory simulator for measuring
//!   achieved OI of reference schedules;
//! * [`polybench`] — the 30 PolyBench/C 4.2 kernels with Table-1 metadata and
//!   reference schedules.
//!
//! ## Quick start
//!
//! ```
//! use iolb::prelude::*;
//!
//! let gemm = iolb::polybench::kernel_by_name("gemm").unwrap();
//! let analysis = analyze(&gemm.dfg, &gemm.analysis_options());
//! assert_eq!(analysis.q_asymptotic().to_string(), "2*Ni*Nj*Nk*S^(-1/2)");
//! let oi = OiSummary::from_analysis(&analysis, Some(gemm.ops.clone())).unwrap();
//! assert_eq!(oi.oi_up.unwrap().to_string(), "S^(1/2)");
//! ```
//!
//! Arbitrary affine programs enter through the affine-C front end (or the
//! `iolb` CLI: `iolb analyze file.iolb`):
//!
//! ```
//! use iolb::prelude::*;
//!
//! let program = iolb::frontend::compile(
//!     "parameter N; double A[N]; double s;\n\
//!      for (i = 0; i < N; i++) s += A[i];",
//! )
//! .unwrap();
//! let dfg = program.to_dfg().unwrap();
//! let analysis = analyze(&dfg, &AnalysisOptions::with_default_instance(&["N"], 1000, 128));
//! // A dot-product-style reduction is bandwidth-bound: Q ≥ input size.
//! assert_eq!(analysis.q_asymptotic().to_string(), "N");
//! ```
//!
//! ## Engine architecture: interning, caching, parallel driver
//!
//! The polyhedral engine under [`poly`] is built for the paper's headline
//! claim — whole-suite analysis in seconds — via three coordinated layers:
//!
//! * **Interning** ([`poly::interner`]): every parameter name is interned
//!   once into a global table, and an affine expression's parameter part is a
//!   compact sorted `Vec<(ParamId, i128)>`. The hot loops of Fourier–Motzkin
//!   elimination ([`poly::fm`]) are two-pointer merges over `u32` keys —
//!   no per-coefficient heap allocation or string comparison. Projection
//!   rounds deduplicate constraints structurally via 128-bit fingerprints
//!   ([`poly::fxhash`]) so duplicates never feed the quadratic FM blowup.
//! * **Memoization** ([`poly::cache`]): feasibility, entailment and symbolic
//!   cardinality queries are memoized process-wide, keyed by fingerprints of
//!   the *exact* query inputs — a cached answer is bit-identical to
//!   recomputation, so the cache can never change a result. Toggle with
//!   [`poly::cache::set_enabled`]; [`poly::stats`] counts operations and hit
//!   rates.
//! * **Parallel driver** ([`core::driver`]): candidate-bound derivation is
//!   independent per (parametrization depth, statement) pair, so
//!   `AnalysisOptions { parallel: true, .. }` (the default) fans those jobs
//!   out over OS threads ([`core::par`]) and reassembles results in the
//!   deterministic serial order before the Lemma-4.2 combination — parallel
//!   and serial runs produce byte-identical `Q_low`.
//!
//! The perf trajectory is tracked by
//! `cargo run --release -p iolb-bench --bin perf_report`, which analyses all
//! 30 PolyBench kernels and writes `BENCH_analysis.json` (per-kernel
//! wall-clock plus the engine-operation counters). Micro-benchmarks live in
//! `crates/bench/benches/analysis_time.rs` (`--features full-suite` times
//! every kernel).

#![warn(missing_docs)]

pub use iolb_cachesim as cachesim;
pub use iolb_cdag as cdag;
pub use iolb_core as core;
pub use iolb_dfg as dfg;
pub use iolb_frontend as frontend;
pub use iolb_ir as ir;
pub use iolb_math as math;
pub use iolb_poly as poly;
pub use iolb_polybench as polybench;
pub use iolb_symbol as symbol;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use iolb_core::{analyze, Analysis, AnalysisOptions, Instance, OiSummary, Regime, Report};
    pub use iolb_dfg::{genpaths, Dfg, GenPathsOptions};
    pub use iolb_poly::{parse_map, parse_set};
    pub use iolb_symbol::{Expr, Poly};
}
