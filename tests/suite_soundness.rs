//! Cross-crate integration tests: every kernel of the suite analyses without
//! panicking and produces a non-trivial bound; for a sample of kernels the
//! bound is validated against the pebble game on small instances; and the
//! measured OI of every simulated schedule respects the analytical OI upper
//! bound at matching sizes (up to the boundary effects of small instances).

use iolb::cdag::{simulate_topological, Cdag};
use iolb::prelude::*;
use iolb_cachesim::simulate_lru;

/// One validation case: kernel name, parameter values, cache capacity.
type Case = (&'static str, Vec<(&'static str, i128)>, usize);

#[test]
fn every_kernel_analyses_and_bounds_at_least_its_inputs() {
    for kernel in iolb::polybench::all_kernels() {
        let analysis = analyze(&kernel.dfg, &kernel.analysis_options());
        let inst = kernel.large_instance();
        let q = analysis.q_at(&inst).unwrap_or(0.0);
        // The compulsory-miss term alone already makes the bound at least the
        // input size of the DFG (which may be smaller than Table 1's input
        // column when only reuse-relevant arrays are modelled).
        assert!(q > 0.0, "{}: Q_low evaluated to {q}", kernel.name);
        // And the OI upper bound is finite and positive.
        let report = Report::new(kernel.name, analysis, Some(kernel.ops.clone()));
        let pairs: Vec<(String, i128)> = inst.as_param_slice();
        let borrowed: Vec<(&str, i128)> = pairs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let oi = report.oi.as_ref().and_then(|o| o.oi_at(&borrowed));
        let oi = oi.unwrap_or(f64::INFINITY);
        assert!(oi.is_finite() && oi > 0.0, "{}: OI_up = {oi}", kernel.name);
    }
}

#[test]
fn bounds_never_exceed_simulated_schedules_on_small_instances() {
    let cases: Vec<Case> = vec![
        ("gemm", vec![("Ni", 6), ("Nj", 5), ("Nk", 7)], 12),
        ("jacobi-1d", vec![("T", 4), ("N", 10)], 6),
        ("trisolv", vec![("N", 9)], 6),
        ("atax", vec![("M", 7), ("N", 6)], 10),
        ("floyd-warshall", vec![("N", 6)], 10),
    ];
    for (name, params, cache) in cases {
        let kernel = iolb::polybench::kernel_by_name(name).unwrap();
        let analysis = analyze(&kernel.dfg, &kernel.analysis_options());
        let mut eval = params.clone();
        eval.push(("S", cache as i128));
        let bound = analysis.q_low.eval_params(&eval).unwrap_or(0.0);
        let cdag = Cdag::instantiate(&kernel.dfg, &params, 24);
        let measured = simulate_topological(&cdag, cache);
        assert!(
            bound <= measured as f64 + 1e-6,
            "{name}: bound {bound} exceeds measured loads {measured}"
        );
    }
}

#[test]
fn streaming_kernels_stay_bandwidth_bound_in_simulation() {
    // For the category-2 kernels, the measured OI of the natural schedule
    // must stay at or below the (constant) analytical upper bound reported in
    // the paper.
    for name in ["atax", "bicg", "mvt", "gesummv"] {
        let kernel = iolb::polybench::kernel_by_name(name).unwrap();
        let t = iolb::polybench::trace(name, 96, 16).unwrap();
        let stats = simulate_lru(&t.trace, 1024);
        let achieved = stats.operational_intensity(t.ops);
        let paper = (kernel.paper_oi_up)(1024.0, &Default::default());
        assert!(
            achieved <= paper * 1.5,
            "{name}: achieved {achieved} far exceeds the paper's OI_up {paper}"
        );
    }
}

#[test]
fn tiled_gemm_beats_untiled_floyd_in_achieved_oi() {
    // Qualitative shape of Figure 6: a tiled matrix product achieves a much
    // higher OI than the untiled floyd-warshall at the same cache size.
    let gemm = iolb::polybench::trace("gemm", 96, 16).unwrap();
    let floyd = iolb::polybench::trace("floyd-warshall", 96, 16).unwrap();
    let gemm_oi = simulate_lru(&gemm.trace, 1024).operational_intensity(gemm.ops);
    let floyd_oi = simulate_lru(&floyd.trace, 1024).operational_intensity(floyd.ops);
    assert!(
        gemm_oi > floyd_oi,
        "tiled gemm ({gemm_oi}) should beat untiled floyd-warshall ({floyd_oi})"
    );
}
