//! The `.iolb` twin gate: the trace walker must treat a front-end program
//! and the equivalent built-in kernel identically. Builtin gemm and
//! `examples/programs/gemm.iolb` must produce byte-identical address traces
//! and byte-identical tightness reports at the same instance, and the
//! shipped AI example programs must preflight clean and simulate within
//! the trace budget.

use iolb::core::tightness::generate_trace;
use iolb::frontend::IolbFile;
use iolb::prelude::*;

fn example(name: &str) -> IolbFile {
    IolbFile::new(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/programs")
            .join(name),
    )
}

#[test]
fn builtin_gemm_and_iolb_gemm_are_trace_and_report_twins() {
    let instance = Instance::new().set("Ni", 12).set("Nj", 10).set("Nk", 8);
    let opts = TightnessOptions::default()
        .instance(instance.clone())
        .cache_sizes(&[64, 1024])
        .opt(true);

    let builtin = Analyzer::new()
        .parallel(false)
        .analyze_with_tightness(&iolb::polybench::kernel_by_name("gemm").unwrap(), &opts)
        .unwrap();
    let from_file = Analyzer::new()
        .parallel(false)
        .analyze_with_tightness(&example("gemm.iolb"), &opts)
        .unwrap();

    // Same DFG shape in, same report out — byte for byte.
    let builtin_report = builtin.tightness.as_ref().unwrap();
    let file_report = from_file.tightness.as_ref().unwrap();
    assert_eq!(
        builtin_report.to_json(),
        file_report.to_json(),
        "builtin gemm and gemm.iolb tightness reports diverged"
    );
    // And the reports actually measured something sound.
    let inst = builtin_report
        .simulated()
        .next()
        .expect("gemm simulates at a 12x10x8 instance");
    assert!(inst.trace_len > 0);
    for point in &inst.caches {
        let q_low = point.q_low.expect("gemm Q_low evaluates");
        assert!(q_low <= point.lru.misses as f64 + 1e-6);
        let opt = point.opt.expect("--opt simulation requested");
        assert!(opt.misses <= point.lru.misses);
    }

    // The traces themselves are byte-identical, not just the summaries.
    let engine = EngineCtx::new();
    engine.scope(|| {
        let builtin_dfg = iolb::polybench::kernel_by_name("gemm").unwrap().dfg;
        let file_dfg = example("gemm.iolb").prepare().unwrap().dfg;
        let a = generate_trace(&builtin_dfg, &instance, 1_000_000).unwrap();
        let b = generate_trace(&file_dfg, &instance, 1_000_000).unwrap();
        assert_eq!(a.trace, b.trace, "address traces diverged");
        assert_eq!(a.ops, b.ops, "operation counts diverged");
        assert_eq!(a.distinct_addresses, b.distinct_addresses);
    });
}

#[test]
fn ai_examples_preflight_clean_and_simulate_within_budget() {
    for name in ["ai/attention.iolb", "ai/conv2d.iolb", "ai/mlp.iolb"] {
        let outcome = Analyzer::new()
            .parallel(false)
            .simulate(&example(name))
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        // Preflight clean: no errors from the static analyzer.
        assert!(
            !outcome.preflight.has_errors(),
            "{name}: preflight diagnostics are not clean: {}",
            outcome.preflight.to_json()
        );

        // Simulated within the default trace budget: at least one instance
        // measured, none skipped.
        let report = outcome.tightness.as_ref().expect("simulate attaches");
        let mut measured = 0usize;
        for inst in &report.instances {
            assert!(
                inst.skipped.is_none(),
                "{name}: instance {:?} skipped: {:?}",
                inst.instance,
                inst.skipped
            );
            measured += 1;
            for point in &inst.caches {
                if let Some(q_low) = point.q_low {
                    assert!(
                        q_low <= point.lru.misses as f64 + 1e-6,
                        "{name}: Q_low {q_low} exceeds LRU misses {}",
                        point.lru.misses
                    );
                }
            }
        }
        assert!(measured > 0, "{name}: nothing simulated");
    }
}
