//! Pins the preflight cost model's calibration against the bench data
//! (`BENCH_analysis.json`): the kernels that dominate suite time — the
//! FM-blowup stencils — must classify `large`, and the cheap dense
//! kernels `small`, so the serve scheduler routes them into the right
//! lanes. A kernel drifting across the threshold is a deliberate
//! recalibration, not noise — update `LARGE_SCORE_THRESHOLD` (or the
//! score) consciously.

use iolb_core::preflight::CostClass;
use iolb_core::Analyzer;

fn class_of(kernel: &str) -> CostClass {
    let kernel = iolb_polybench::kernel_by_name(kernel).expect("known kernel");
    Analyzer::new()
        .preflight(&kernel)
        .expect("preflight succeeds on built-in kernels")
        .cost_class()
}

#[test]
fn blowup_stencils_classify_large() {
    // heat-3d is ~90% of the 30-kernel suite's analysis time; jacobi-2d
    // and seidel-2d are the next two multi-hundred-millisecond kernels.
    for kernel in ["heat-3d", "jacobi-2d", "seidel-2d"] {
        assert_eq!(class_of(kernel), CostClass::Large, "{kernel}");
    }
}

#[test]
fn dense_linear_algebra_classifies_small() {
    for kernel in [
        "gemm",
        "cholesky",
        "2mm",
        "3mm",
        "lu",
        "atax",
        "mvt",
        "floyd-warshall",
    ] {
        assert_eq!(class_of(kernel), CostClass::Small, "{kernel}");
    }
}

#[test]
fn every_kernel_preflights_cleanly() {
    // The full catalogue: preflight succeeds, produces a non-empty
    // profile, and raises no diagnostics at all on the curated kernels.
    for kernel in iolb_polybench::all_kernels() {
        let report = Analyzer::new().preflight(&kernel).expect(kernel.name);
        assert!(
            !report.profile.statements.is_empty(),
            "{}: empty profile",
            kernel.name
        );
        assert!(
            report.diagnostics.is_empty(),
            "{}: unexpected diagnostics {:?}",
            kernel.name,
            report.diagnostics
        );
    }
}

#[test]
fn source_programs_calibrate_like_their_builtin_twins() {
    // The ping-pong two-statement jacobi (the `.iolb` example) must land
    // in the same class as the built-in single-statement kernel: its
    // cross-statement dependences are shifts, not general affine maps.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    for (file, want) in [
        ("gemm.iolb", CostClass::Small),
        ("cholesky.iolb", CostClass::Small),
        ("jacobi-2d.iolb", CostClass::Large),
    ] {
        let workload = iolb_frontend::IolbFile::new(format!("{dir}/{file}"));
        let report = Analyzer::new().preflight(&workload).expect(file);
        assert_eq!(report.cost_class(), want, "{file}");
    }
}
