//! Integration tests reproducing the paper's worked examples:
//! the elementary example of Fig. 1/2, the wavefront example of Fig. 3,
//! the cholesky walk-through of Appendix A and the LU walk-through of
//! Appendix B.

use iolb::prelude::*;
use iolb_core::partition::{partition_bound, PartitionInput};
use iolb_math::{Lattice, Subspace};
use iolb_poly::Context;

fn ctx(params: &[&str]) -> Context {
    params
        .iter()
        .fold(Context::empty(), |c, p| c.assume_ge(p, 4))
}

fn lattice_for(paths: &[iolb_dfg::DfgPath]) -> Lattice {
    let dim = paths[0].relation.n_out();
    let kernels: Vec<Subspace> = paths.iter().map(|p| p.kernel()).collect();
    Lattice::generate(dim, &kernels, 100_000).0
}

/// Appendix A: the K-partition bound for cholesky's update statement is
/// asymptotically N³/(6√S).
#[test]
fn cholesky_appendix_a_bound() {
    let dfg = iolb::polybench::kernels::solvers::cholesky_dfg();
    let domain = dfg.node("S3").unwrap().domain.clone();
    let paths: Vec<_> = genpaths(&dfg, "S3", &domain, &GenPathsOptions::default())
        .into_iter()
        .filter(|p| p.vertices.len() == 2)
        .collect();
    assert_eq!(paths.len(), 3, "chain + two broadcasts expected");
    let lattice = lattice_for(&paths);
    let input = PartitionInput {
        paths: &paths,
        domain: &domain,
        lattice: &lattice,
        ctx: &ctx(&["N"]),
        cache_param: "S",
    };
    let bound = partition_bound(&input).expect("cholesky bound derivable");
    let lead = iolb::symbol::asymptotic::simplify(&bound.expr, "S");
    assert_eq!(lead.to_string(), "1/6*N^3*S^(-1/2)");
}

/// Appendix B: the K-partition bound for LU's update statement is
/// asymptotically (2/3)·N³/√S (after summing the independent projections).
#[test]
fn lu_appendix_b_bound() {
    let dfg = iolb::polybench::kernels::solvers::lu_dfg();
    let domain = dfg.node("S2").unwrap().domain.clone();
    let paths: Vec<_> = genpaths(&dfg, "S2", &domain, &GenPathsOptions::default())
        .into_iter()
        .filter(|p| p.vertices.len() == 2)
        .collect();
    assert!(
        paths.len() >= 3,
        "expected at least three one-edge paths, got {}",
        paths.len()
    );
    let lattice = lattice_for(&paths);
    let input = PartitionInput {
        paths: &paths,
        domain: &domain,
        lattice: &lattice,
        ctx: &ctx(&["N"]),
        cache_param: "S",
    };
    let bound = partition_bound(&input).expect("lu bound derivable");
    let lead = iolb::symbol::asymptotic::simplify(&bound.expr, "S");
    // Leading term c·N³/√S with c between the paper's conservative 1/3 and
    // the summed-projection 2/3.
    let v = lead
        .eval_f64(
            &[("N".to_string(), 1000.0), ("S".to_string(), 1.0)]
                .into_iter()
                .collect(),
        )
        .unwrap();
    let n3 = 1000.0_f64.powi(3);
    assert!(
        v >= n3 / 3.0 - 1e-3,
        "leading coefficient too small: {lead}"
    );
    assert!(v <= n3, "leading coefficient implausibly large: {lead}");
}

/// The elementary example of Fig. 1/2: the full analysis returns a bound with
/// leading term M·N/S and OI upper bound O(S).
#[test]
fn example1_full_analysis() {
    let dfg = Dfg::builder()
        .input("A", "[N] -> { A[i] : 0 <= i < N }")
        .input("C", "[M] -> { C[t] : 0 <= t < M }")
        .statement("St", "[M, N] -> { St[t, i] : 0 <= t < M and 0 <= i < N }")
        .edge(
            "A",
            "St",
            "[N] -> { A[i] -> St[t, i2] : t = 0 and i2 = i and 0 <= i < N }",
        )
        .edge(
            "C",
            "St",
            "[M, N] -> { C[t] -> St[t, i] : 0 <= t < M and 0 <= i < N }",
        )
        .edge(
            "St",
            "St",
            "[M, N] -> { St[t, i] -> St[t + 1, i] : 0 <= t < M - 1 and 0 <= i < N }",
        )
        .build()
        .unwrap();
    let mut options = AnalysisOptions::with_default_instance(&["M", "N"], 4096, 256);
    options.max_parametrization_depth = 0;
    let analysis = analyze(&dfg, &options);
    // Q_low includes the compulsory misses N + M plus the partition term.
    let value = analysis
        .q_at(&Instance::from_pairs(&[
            ("M", 4096),
            ("N", 4096),
            ("S", 256),
        ]))
        .unwrap();
    let mn_over_s = 4096.0 * 4096.0 / 256.0;
    assert!(
        value >= mn_over_s * 0.5,
        "bound {value} much weaker than MN/S"
    );
    // And it never exceeds the untiled schedule cost of ~M·N loads.
    assert!(value <= 4096.0 * 4096.0 * 1.1);
}

/// Example 2 (Fig. 3): the combination of loop parametrization and the
/// wavefront bound yields (M−1)(N−S) plus compulsory misses.
#[test]
fn example2_wavefront_decomposition() {
    let dfg = Dfg::builder()
        .statement("S1", "[M, N] -> { S1[t, i] : 0 <= t < M and 0 <= i < N }")
        .statement("S2", "[M, N] -> { S2[t, i] : 0 <= t < M and 0 <= i < N }")
        .edge(
            "S2",
            "S1",
            "[M, N] -> { S2[t, i] -> S1[t2, i2] : t2 = t + 1 and i2 = i and 0 <= t < M - 1 and 0 <= i < N }",
        )
        .edge(
            "S1",
            "S1",
            "[M, N] -> { S1[t, i] -> S1[t2, i2] : t2 = t and i2 = i + 1 and 0 <= t < M and 0 <= i < N - 1 }",
        )
        .edge(
            "S1",
            "S2",
            "[M, N] -> { S1[t, i] -> S2[t2, j] : t2 = t and i = N - 1 and 0 <= t < M and 0 <= j < N }",
        )
        .edge(
            "S2",
            "S2",
            "[M, N] -> { S2[t, i] -> S2[t + 1, i] : 0 <= t < M - 1 and 0 <= i < N }",
        )
        .build()
        .unwrap();
    let mut options = AnalysisOptions::with_default_instance(&["M", "N"], 64, 16);
    options.max_parametrization_depth = 1;
    let analysis = analyze(&dfg, &options);
    let value = analysis
        .q_at(&Instance::from_pairs(&[("M", 64), ("N", 64), ("S", 16)]))
        .unwrap();
    // The paper's bound for this sub-structure is (M−1)(N−S) = 63·48 = 3024.
    assert!(
        value >= 3024.0 * 0.9,
        "expected roughly (M-1)(N-S), got {value}"
    );
}

/// Example 3 (Fig. 4): the kernel with `A[i] = f(A[i], A[k])` decomposes into
/// two non-interfering sub-CDAGs whose bounds are summed; the result is at
/// least N²/S-flavoured rather than the single-region N²/(2S).
#[test]
fn example3_decomposition() {
    let dfg = Dfg::builder()
        .input("A", "[N] -> { A[i] : 0 <= i < N }")
        .statement("St", "[N] -> { St[k, i] : 0 <= k < N and 0 <= i < N }")
        .edge("A", "St", "[N] -> { A[i] -> St[k, i2] : k = 0 and i2 = i and 0 <= i < N }")
        // A[i] from the previous k-iteration.
        .edge(
            "St",
            "St",
            "[N] -> { St[k, i] -> St[k + 1, i] : 0 <= k < N - 1 and 0 <= i < N }",
        )
        // A[k], written in the current iteration when i < k (upper part) and
        // in the previous one when i >= k (lower part) — the two broadcasts of
        // Fig. 4.
        .edge(
            "St",
            "St",
            "[N] -> { St[k, i] -> St[k2, i2] : k2 = k + 1 and i = k + 1 and 0 <= k < N - 1 and 0 <= i2 < k + 1 }",
        )
        .edge(
            "St",
            "St",
            "[N] -> { St[k, i] -> St[k2, i2] : k2 = k and i = k and 0 <= k < N and k < i2 < N }",
        )
        .build()
        .unwrap();
    let mut options = AnalysisOptions::with_default_instance(&["N"], 2048, 64);
    options.max_parametrization_depth = 0;
    let analysis = analyze(&dfg, &options);
    let value = analysis
        .q_at(&Instance::from_pairs(&[("N", 2048), ("S", 64)]))
        .unwrap();
    // The single-region geometric bound is N²/(4S); the decomposition of
    // Fig. 4 roughly doubles it. We check the bound lands in the decomposed
    // regime (well above N²/(4S); boundary terms keep it slightly below the
    // idealised N²/(2S)).
    let n2_over_4s = 2048.0 * 2048.0 / (4.0 * 64.0);
    assert!(
        value >= 1.5 * n2_over_4s,
        "decomposed bound {value} should exceed 1.5×N²/(4S) = {}",
        1.5 * n2_over_4s
    );
}
