//! The acceptance gate for the session-scoped engine: on every PolyBench
//! kernel, the parallel, cached driver must produce a `q_low`
//! **byte-identical** to the serial, uncached path, and two engine sessions
//! running concurrently must share no cache or statistics while still
//! producing byte-identical results.

use iolb::prelude::*;

/// Serial + parallel equivalence, per kernel, across isolated sessions: a
/// serial uncached session and a parallel cached session must agree byte
/// for byte (the PR-1 guarantee, now with per-kernel isolation).
#[test]
fn cached_parallel_q_low_matches_serial_uncached_on_every_kernel() {
    for kernel in iolb::polybench::all_kernels() {
        let serial = Analyzer::new()
            .parallel(false)
            .cache_enabled(false)
            .analyze(&kernel)
            .unwrap();
        let fast = Analyzer::new().parallel(true).analyze(&kernel).unwrap();

        assert_eq!(
            serial.analysis().q_low.to_string(),
            fast.analysis().q_low.to_string(),
            "{}: parallel+cached q_low diverged from serial+uncached",
            kernel.name
        );
        assert_eq!(
            serial.analysis().input_size.to_string(),
            fast.analysis().input_size.to_string(),
            "{}: input-size term diverged",
            kernel.name
        );
        assert_eq!(
            serial.analysis().accepted.len(),
            fast.analysis().accepted.len(),
            "{}: accepted candidate set diverged",
            kernel.name
        );
        // The uncached session must report zero hits; its counters come from
        // this kernel alone.
        assert_eq!(serial.stats.FEASIBILITY_CACHE_HITS, 0, "{}", kernel.name);
        assert_eq!(serial.stats.COUNT_CACHE_HITS, 0, "{}", kernel.name);
    }
}

/// The session-isolation proof: all 30 kernels are analysed **concurrently
/// in two threads**, each kernel in its own session, and every result —
/// `q_low` *and* the per-session operation counters — must be byte-for-byte
/// identical to a serial single-session reference run. If sessions shared
/// any cache entry or counter, the concurrent counters would diverge (extra
/// hits, bled counts); if state leaked into the global session, its
/// counters would move.
#[test]
fn concurrent_sessions_share_no_cache_or_stats_and_agree_with_serial_runs() {
    let kernels = iolb::polybench::all_kernels();

    // Serial references: one fresh session per kernel, serial driver (the
    // serial driver keeps the operation counts deterministic).
    let reference: Vec<(String, iolb::poly::stats::Snapshot)> = kernels
        .iter()
        .map(|kernel| {
            let outcome = Analyzer::new().parallel(false).analyze(kernel).unwrap();
            (outcome.analysis().q_low.to_string(), outcome.stats)
        })
        .collect();

    let global_before = EngineCtx::global().stats();

    // Concurrent run: two threads split the suite and race.
    let mid = kernels.len() / 2;
    let halves = [&kernels[..mid], &kernels[mid..]];
    let results: Vec<Vec<(String, iolb::poly::stats::Snapshot)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = halves
            .iter()
            .map(|half| {
                scope.spawn(move || {
                    half.iter()
                        .map(|kernel| {
                            let outcome = Analyzer::new().parallel(false).analyze(kernel).unwrap();
                            (outcome.analysis().q_low.to_string(), outcome.stats)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let concurrent: Vec<(String, iolb::poly::stats::Snapshot)> =
        results.into_iter().flatten().collect();
    assert_eq!(concurrent.len(), reference.len());
    for (i, kernel) in kernels.iter().enumerate() {
        assert_eq!(
            concurrent[i].0, reference[i].0,
            "{}: concurrent-session q_low diverged from the serial reference",
            kernel.name
        );
        assert_eq!(
            concurrent[i].1, reference[i].1,
            "{}: concurrent-session engine counters diverged — sessions are \
             not isolated",
            kernel.name
        );
    }

    // Nothing leaked into the global fallback session.
    assert_eq!(
        EngineCtx::global().stats(),
        global_before,
        "concurrent sessions must not touch the global session"
    );
}

/// The degradation gate: a budget that is installed but never trips must be
/// *invisible* — `q_low` byte-identical to the unbudgeted run and no
/// degradation marker — on every kernel. Budget checkpoints sit inside the
/// FM and counting hot loops, so this is the proof that checking a budget
/// is observation, not perturbation.
#[test]
fn untripped_budgets_leave_q_low_byte_identical_on_every_kernel() {
    use std::time::Duration;
    for kernel in iolb::polybench::all_kernels() {
        let plain = Analyzer::new().parallel(false).analyze(&kernel).unwrap();
        let budgeted = Analyzer::new()
            .parallel(false)
            .deadline(Duration::from_secs(3600))
            .budget(
                Budget::none()
                    .max_fm_steps(u64::MAX)
                    .max_constraints(usize::MAX)
                    .max_cache_entries(usize::MAX)
                    .cancel_token(CancelToken::new()),
            )
            .analyze(&kernel)
            .unwrap();
        assert_eq!(
            plain.analysis().q_low.to_string(),
            budgeted.analysis().q_low.to_string(),
            "{}: an untripped budget changed the bound",
            kernel.name
        );
        assert!(
            budgeted.analysis().degradation.is_none(),
            "{}: an untripped budget reported degradation",
            kernel.name
        );
    }
}

#[test]
fn repeated_analysis_in_one_session_is_deterministic_and_warm() {
    // Two runs of the same analysis in one session (second one fully
    // cache-warm) must agree, and the second must actually hit the cache.
    let kernel = iolb::polybench::kernel_by_name("cholesky").unwrap();
    let first = Analyzer::new().analyze(&kernel).unwrap();
    let second = Analyzer::new()
        .engine(first.engine().clone())
        .analyze(&kernel)
        .unwrap();
    assert_eq!(
        first.analysis().q_low.to_string(),
        second.analysis().q_low.to_string()
    );
    assert_eq!(
        first.analysis().q_asymptotic().to_string(),
        second.analysis().q_asymptotic().to_string()
    );
    // The warm run must be answered from the cache. Comparing hit *counts*
    // across the runs would be misleading: a top-level hit in the warm run
    // short-circuits the whole memoized elimination recursion, so the warm
    // run consults the cache far fewer times than the cold run's
    // intermediate states did. The direct property is that the warm run
    // recomputes nothing: every consult hits and no elimination is ever
    // performed.
    assert!(
        second.stats.FEASIBILITY_CACHE_HITS > 0,
        "second run in the same session should be answered from the warm cache"
    );
    assert_eq!(
        second.stats.FM_ELIMINATIONS, 0,
        "a fully warm run must not recompute any elimination"
    );
    assert_eq!(
        second.stats.feasibility_hit_rate(),
        Some(1.0),
        "every feasibility consult of the warm run must hit"
    );
}

/// The LP pivot loop is a budget checkpoint: an expired deadline must trip
/// `EngineInterrupt::Deadline` from *inside* an exact-simplex solve — before
/// a single Fourier–Motzkin elimination has run — and surface as a typed,
/// catchable interrupt rather than a wedged pivot loop.
#[test]
fn expired_deadline_trips_inside_lp_pivot_checkpoints() {
    use std::time::Duration;

    // Force LP pruning for essentially every system, then install an
    // already-expired deadline. The first feasibility query reaches
    // `redundancy::lp_prune` during its prune pass, and the pivot callback
    // raises before any elimination happens.
    let engine = EngineCtx::with_config(EngineConfig {
        lp_prune_threshold: 2,
        ..EngineConfig::default()
    });
    engine.install_budget(Budget::none().deadline_in(Duration::ZERO));
    let result = engine.scope(|| {
        EngineInterrupt::catch(|| {
            let s = parse_set("{ S[x, y] : 0 <= x <= 10 and x >= 1 and 0 <= y <= x + 4 }").unwrap();
            iolb::poly::fm::is_feasible_in(&EngineCtx::current(), s.constraints(), s.dim())
        })
    });
    engine.clear_budget();
    assert_eq!(result, Err(EngineInterrupt::Deadline));
    assert!(
        engine.stats().LP_CALLS >= 1,
        "the interrupt must come from inside an LP solve"
    );
    assert_eq!(
        engine.stats().FM_ELIMINATIONS,
        0,
        "the deadline fired during pruning, before any elimination"
    );
}

/// A deadline too short for heat-3d must degrade the analysis (or reject it
/// outright before any bound exists) and must **never** publish the partial
/// result to the result cache: the next uncontended request recomputes in
/// full.
#[test]
fn tripped_deadline_never_publishes_to_the_result_cache() {
    use std::time::Duration;

    let cache = ResultCache::new(ResultCacheConfig::default()).unwrap();
    let kernel = iolb::polybench::kernel_by_name("heat-3d").unwrap();
    let rushed = Analyzer::new()
        .parallel(false)
        .deadline(Duration::from_millis(1))
        .result_cache(cache.clone())
        .analyze_cached(&kernel);
    match rushed {
        Ok(reply) => {
            // The deadline tripped after the compulsory-miss term: a valid
            // but degraded bound, computed fresh and not stored.
            assert!(!reply.cached(), "a rushed first request cannot be served");
            let outcome = reply.outcome().expect("computed reply has an outcome");
            assert!(
                outcome.analysis().degradation.is_some(),
                "a 1ms deadline must degrade heat-3d"
            );
        }
        Err(AnalyzeError::Interrupted(interrupt)) => {
            // Tripped before any valid bound existed.
            assert_eq!(interrupt, EngineInterrupt::Deadline);
        }
        Err(other) => panic!("unexpected analyze error: {other}"),
    }
    // Whatever happened above, nothing was published: a fresh unhurried
    // request must compute, not replay a degraded document.
    let relaxed = Analyzer::new()
        .result_cache(cache.clone())
        .analyze_cached(&kernel)
        .unwrap();
    assert!(
        !relaxed.cached(),
        "a degraded or rejected analysis must never be published to the result cache"
    );
    assert!(
        relaxed
            .outcome()
            .expect("computed reply")
            .analysis()
            .degradation
            .is_none(),
        "the unhurried rerun must be complete"
    );
}

/// The result-cache replay gate: every kernel is analysed three times —
/// cold (computing and filling a disk-backed result cache), hot (the
/// memory tier), and from a *fresh* cache over the same directory (the
/// disk tier, i.e. a simulated daemon restart) — and the full report
/// document must be **byte-identical** on all three paths, with the
/// `cached` flag and serving tier correct on each.
#[test]
fn result_cache_replays_every_kernel_byte_identically_across_tiers() {
    use iolb::core::result_cache::Tier;

    let dir = std::env::temp_dir().join(format!("iolb-replay-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let disk_cache = || {
        ResultCache::new(ResultCacheConfig {
            disk: Some(DiskTierConfig::new(dir.clone())),
            ..ResultCacheConfig::default()
        })
        .expect("disk tier opens")
    };

    let cache = disk_cache();
    let kernels = iolb::polybench::all_kernels();

    // Cold pass: every reply computes, carries its fingerprint, and fills
    // both tiers.
    let cold: Vec<String> = kernels
        .iter()
        .map(|kernel| {
            let reply = Analyzer::new()
                .result_cache(cache.clone())
                .analyze_cached(kernel)
                .unwrap();
            assert!(!reply.cached(), "{}: cold pass must compute", kernel.name);
            assert!(reply.fingerprint().is_some(), "{}", kernel.name);
            reply.to_json()
        })
        .collect();

    // Hot pass: the memory tier serves every kernel, byte for byte.
    for (kernel, cold_json) in kernels.iter().zip(&cold) {
        let reply = Analyzer::new()
            .result_cache(cache.clone())
            .analyze_cached(kernel)
            .unwrap();
        match &reply {
            AnalysisReply::Cached { tier, .. } => assert_eq!(
                *tier,
                Tier::Memory,
                "{}: hot pass must hit the memory tier",
                kernel.name
            ),
            AnalysisReply::Computed { .. } => panic!("{}: hot pass recomputed", kernel.name),
        }
        assert_eq!(
            &reply.to_json(),
            cold_json,
            "{}: memory-tier replay is not byte-identical",
            kernel.name
        );
    }

    // Simulated restart: a fresh cache over the same directory has an
    // empty memory tier and must replay every kernel from disk.
    drop(cache);
    let restarted = disk_cache();
    for (kernel, cold_json) in kernels.iter().zip(&cold) {
        let reply = Analyzer::new()
            .result_cache(restarted.clone())
            .analyze_cached(kernel)
            .unwrap();
        match &reply {
            AnalysisReply::Cached { tier, .. } => assert_eq!(
                *tier,
                Tier::Disk,
                "{}: post-restart pass must hit the disk tier",
                kernel.name
            ),
            AnalysisReply::Computed { .. } => panic!("{}: restart pass recomputed", kernel.name),
        }
        assert_eq!(
            &reply.to_json(),
            cold_json,
            "{}: disk-tier replay is not byte-identical",
            kernel.name
        );
    }
    let stats = restarted.stats();
    assert_eq!(stats.disk_hits, kernels.len() as u64);
    assert_eq!(stats.disk_corrupt, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The lower-bound soundness gate: on every kernel with a simulatable
/// instance, the measured LRU miss count must dominate the evaluated
/// parametric `Q_low` at that instance and cache size — a kernel failing
/// this is an engine bug, not a tightness shortfall. And turning the
/// tightness pass on must leave the analytical `q_low` expression
/// byte-identical to the plain path on all 30 kernels: simulation is
/// observation, not perturbation.
#[test]
fn measured_lru_misses_dominate_q_low_and_tightness_leaves_q_low_byte_identical() {
    // Two regimes per kernel: a thrashing cache (64 words) and one large
    // enough that the default all-16 instance fits (1024 words).
    let opts = TightnessOptions::default().cache_sizes(&[64, 1024]);
    let mut kernels_with_sound_points = 0usize;
    for kernel in iolb::polybench::all_kernels() {
        let plain = Analyzer::new().parallel(false).analyze(&kernel).unwrap();
        let simulated = Analyzer::new()
            .parallel(false)
            .analyze_with_tightness(&kernel, &opts)
            .unwrap();

        assert_eq!(
            plain.analysis().q_low.to_string(),
            simulated.analysis().q_low.to_string(),
            "{}: enabling the tightness pass changed q_low",
            kernel.name
        );

        let report = simulated
            .tightness
            .as_ref()
            .expect("analyze_with_tightness always attaches a report");
        let mut sound_points = 0usize;
        for inst in report.simulated() {
            // Cold misses are a floor for any policy; the walker's trace
            // must respect it.
            for point in &inst.caches {
                assert!(
                    point.lru.misses >= inst.distinct_addresses,
                    "{}: LRU misses below the compulsory floor",
                    kernel.name
                );
                let Some(q_low) = point.q_low else { continue };
                assert!(
                    q_low <= point.lru.misses as f64 + 1e-6,
                    "{}: UNSOUND — Q_low {} exceeds measured LRU misses {} at \
                     {} words ({:?})",
                    kernel.name,
                    q_low,
                    point.lru.misses,
                    point.cache_words,
                    inst.instance
                );
                if let Some(ratio) = point.tightness_lru() {
                    assert!(
                        ratio > 0.0 && ratio <= 1.0 + 1e-9,
                        "{}: tightness ratio {ratio} outside (0, 1]",
                        kernel.name
                    );
                }
                sound_points += 1;
            }
        }
        if sound_points > 0 {
            kernels_with_sound_points += 1;
        }
    }
    // The walker must actually cover the suite: a regression that silently
    // skips most kernels (budget trips, enumeration failures) fails here.
    assert!(
        kernels_with_sound_points >= 25,
        "only {kernels_with_sound_points} kernels produced simulatable \
         instances with an evaluable Q_low"
    );
}
