//! The acceptance gate for the interned/cached/parallel engine: on every
//! PolyBench kernel, `analyze` with the parallel driver and the query cache
//! enabled must produce a `q_low` **byte-identical** to the serial, uncached
//! path. The cache is deliberately not cleared between kernels, so later
//! kernels also exercise cross-kernel cache reuse.

use iolb::prelude::*;

#[test]
fn cached_parallel_q_low_matches_serial_uncached_on_every_kernel() {
    iolb::poly::cache::clear();
    for kernel in iolb::polybench::all_kernels() {
        let mut serial_opts = kernel.analysis_options();
        serial_opts.parallel = false;
        iolb::poly::cache::set_enabled(false);
        let serial = analyze(&kernel.dfg, &serial_opts);

        let mut parallel_opts = kernel.analysis_options();
        parallel_opts.parallel = true;
        iolb::poly::cache::set_enabled(true);
        let fast = analyze(&kernel.dfg, &parallel_opts);

        assert_eq!(
            serial.q_low.to_string(),
            fast.q_low.to_string(),
            "{}: parallel+cached q_low diverged from serial+uncached",
            kernel.name
        );
        assert_eq!(
            serial.input_size.to_string(),
            fast.input_size.to_string(),
            "{}: input-size term diverged",
            kernel.name
        );
        assert_eq!(
            serial.accepted.len(),
            fast.accepted.len(),
            "{}: accepted candidate set diverged",
            kernel.name
        );
    }
    // Leave the cache in its default state for other tests in this process.
    iolb::poly::cache::set_enabled(true);
}

#[test]
fn repeated_analysis_is_deterministic() {
    // Two runs of the same analysis (second one fully cache-warm) must agree.
    let kernel = iolb::polybench::kernel_by_name("cholesky").unwrap();
    let opts = kernel.analysis_options();
    let a = analyze(&kernel.dfg, &opts);
    let b = analyze(&kernel.dfg, &opts);
    assert_eq!(a.q_low.to_string(), b.q_low.to_string());
    assert_eq!(a.q_asymptotic().to_string(), b.q_asymptotic().to_string());
}
