//! End-to-end tests for the affine-C front end: the `.iolb` example
//! programs under `examples/programs/` must compile, analyse, and — for
//! gemm — reproduce exactly the parametric bound of the hand-written
//! built-in kernel.

use iolb_core::{analyze, AnalysisOptions};

fn compile_example(name: &str) -> iolb_dfg::Dfg {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let program = iolb_frontend::compile(&src).unwrap_or_else(|e| panic!("compile {name}: {e}"));
    program
        .to_dfg()
        .unwrap_or_else(|e| panic!("dataflow for {name}: {e}"))
}

/// The session-scoped path: the same `.iolb` file analysed through the
/// `Analyzer` (fresh engine session, file compiled inside it) must match
/// the built-in kernel analysed through the `Analyzer` — the library-level
/// form of the CLI equality check.
#[test]
fn gemm_iolb_matches_builtin_kernel_through_analyzer() {
    let path = format!("{}/examples/programs/gemm.iolb", env!("CARGO_MANIFEST_DIR"));
    let from_file = iolb_core::Analyzer::new()
        .analyze(&iolb_frontend::IolbFile::new(&path))
        .unwrap();
    let kernel = iolb_polybench::kernel_by_name("gemm").expect("builtin gemm");
    let builtin = iolb_core::Analyzer::new().analyze(&kernel).unwrap();
    assert_eq!(
        from_file.analysis().q_low.to_string(),
        builtin.analysis().q_low.to_string()
    );
    assert_eq!(from_file.report.kernel, "gemm");
    // The two runs used isolated sessions: each reports only its own work.
    assert!(from_file.stats.FEASIBILITY_CHECKS > 0);
    assert!(builtin.stats.FEASIBILITY_CHECKS > 0);
}

/// The gemm acceptance criterion: the `.iolb` file and the built-in kernel
/// produce the *same* parametric lower bound, not merely asymptotically
/// equal ones.
#[test]
fn gemm_iolb_matches_builtin_kernel() {
    let kernel = iolb_polybench::kernel_by_name("gemm").expect("builtin gemm");
    let options = kernel.analysis_options();
    let builtin = analyze(&kernel.dfg, &options);

    let dfg = compile_example("gemm.iolb");
    let frontend = analyze(&dfg, &options);

    assert_eq!(frontend.q_low.to_string(), builtin.q_low.to_string());
    assert_eq!(
        frontend.q_asymptotic().to_string(),
        builtin.q_asymptotic().to_string()
    );
    assert_eq!(
        frontend.input_size.to_string(),
        builtin.input_size.to_string()
    );
}

/// jacobi-2d written as its real two-statement (A → B, B → A) form: the
/// front end must resolve the cross-time-step dependences. The analysis
/// must discover the time-step chain circuits through *both* statements
/// and land in the same asymptotic class as the built-in single-statement
/// model (whose bound is its input size, `N^2`; the two-array form reads
/// the boundary of `B` as well, hence `2*N^2`).
#[test]
fn jacobi_2d_iolb_compiles_and_analyses() {
    let dfg = compile_example("jacobi-2d.iolb");
    // Two statements plus the initial contents of both arrays (the
    // boundary cells of B are never written, so they are genuine inputs).
    assert_eq!(dfg.statements().count(), 2);
    assert!(dfg.nodes().iter().any(|n| n.name == "Ain"));

    // The ping-pong dependence forms chain circuits S1 → S2 → S1 with a
    // unit time-step delta — the reuse structure the paper's stencil
    // reasoning is built on.
    let domain = dfg.node("S1").unwrap().domain.clone();
    let paths = iolb_dfg::genpaths(&dfg, "S1", &domain, &iolb_dfg::GenPathsOptions::default());
    assert!(
        paths
            .iter()
            .any(|p| p.kind.is_chain() && p.vertices == ["S1", "S2", "S1"]),
        "expected a two-hop chain circuit through S2"
    );

    let mut options = AnalysisOptions::with_default_instance(&["T", "N"], 500, 1024);
    options.max_parametrization_depth = 0;
    let analysis = analyze(&dfg, &options);
    assert_eq!(analysis.q_asymptotic().to_string(), "2*N^2");
}

/// Right-looking Cholesky: triangular loops, three statements updating the
/// same array, cross-statement kills. The derived DFG must reproduce the
/// structure of the hand-written kernel (S2 reads its column head from S3
/// of the previous k, etc.) and analyse to the same asymptotic bound class.
#[test]
fn cholesky_iolb_compiles_and_analyses() {
    let dfg = compile_example("cholesky.iolb");
    assert_eq!(dfg.statements().count(), 3);

    // The diagonal statement reads from the update statement of the
    // previous outer iteration — the dependence that makes the nest
    // wavefront-free but tileable.
    assert!(dfg.edges().iter().any(|e| e.src == "S3" && e.dst == "S1"));
    assert!(dfg.edges().iter().any(|e| e.src == "S2" && e.dst == "S3"));

    let kernel = iolb_polybench::kernel_by_name("cholesky").expect("builtin cholesky");
    let options = kernel.analysis_options();
    let builtin = analyze(&kernel.dfg, &options);
    let analysis = analyze(&dfg, &options);
    assert_eq!(
        analysis.q_asymptotic().to_string(),
        builtin.q_asymptotic().to_string()
    );
}
