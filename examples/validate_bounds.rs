//! Empirical soundness check: for small concrete problem sizes, the symbolic
//! lower bound must never exceed the number of loads actually performed by a
//! valid schedule of the explicit CDAG under the red-white pebble game.
//!
//! Run with: `cargo run --example validate_bounds`

use iolb::cdag::{simulate_topological, Cdag};
use iolb::prelude::*;

/// One validation case: kernel name, parameter values, cache capacity.
type Case = (&'static str, Vec<(&'static str, i128)>, usize);

fn main() {
    let cases: Vec<Case> = vec![
        ("gemm", vec![("Ni", 6), ("Nj", 6), ("Nk", 6)], 16),
        ("jacobi-1d", vec![("T", 5), ("N", 12)], 8),
        ("atax", vec![("M", 8), ("N", 8)], 12),
        ("trisolv", vec![("N", 10)], 8),
    ];

    let mut all_sound = true;
    for (name, params, cache) in cases {
        let kernel = iolb::polybench::kernel_by_name(name).expect("known kernel");
        let analysis = analyze(&kernel.dfg, &kernel.analysis_options());

        // Evaluate the symbolic bound at the small instance.
        let mut eval_params = params.clone();
        eval_params.push(("S", cache as i128));
        let bound = analysis.q_low.eval_params(&eval_params).unwrap_or(0.0);

        // Measure the loads of a topological-order schedule under the pebble
        // game with `cache` red pebbles.
        let cdag = Cdag::instantiate(&kernel.dfg, &params, 32);
        let measured = simulate_topological(&cdag, cache);

        let sound = bound <= measured as f64 + 1e-9;
        all_sound &= sound;
        println!(
            "{name:<12} params {params:?} S={cache:<3} bound = {bound:>9.1}  measured = {measured:>7}  {}",
            if sound { "OK (bound <= measured)" } else { "VIOLATION" }
        );
    }
    assert!(
        all_sound,
        "a derived bound exceeded a measured schedule cost"
    );
    println!("\nAll derived bounds are below the measured schedule costs — as a valid lower bound must be.");
}
