//! Analyse a selection of PolyBench kernels and print the reviewable report
//! for each: the derived bound, its asymptotic form, the OI upper bound and
//! the accepted sub-bounds with their derivation notes.
//!
//! Run with: `cargo run --example polybench_report [kernel ...]`

use iolb::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selection: Vec<String> = if args.is_empty() {
        vec![
            "gemm".into(),
            "cholesky".into(),
            "jacobi-1d".into(),
            "atax".into(),
        ]
    } else {
        args
    };

    for name in &selection {
        let Some(kernel) = iolb::polybench::kernel_by_name(name) else {
            eprintln!("unknown kernel: {name}");
            continue;
        };
        // Each kernel gets its own engine session via the Analyzer.
        let outcome = Analyzer::new().analyze(&kernel).expect("kernel prepares");
        println!("{}", outcome.report);
        println!(
            "  paper reports OI_up = {}, manual schedule achieves {}",
            kernel.paper_oi_up_desc, kernel.oi_manual_desc
        );
        println!();
    }
}
