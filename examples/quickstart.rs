//! Quick start: derive a parametric I/O lower bound and an operational
//! intensity upper bound for matrix multiplication, then compare it with the
//! machine balance of a Skylake-X class core.
//!
//! Run with: `cargo run --example quickstart`

use iolb::prelude::*;

fn main() {
    // Describe the computation as a data-flow graph in the ISL-like notation
    // of the paper: C[i][j] += A[i][k] * B[k][j]. The Analyzer runs the
    // analysis in its own engine session; building the DFG inside
    // `analyze_with` binds it to that session.
    let build_dfg = || {
        Dfg::builder()
        .input("A", "[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
        .input("B", "[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
        .statement_with_ops(
            "C",
            "[Ni, Nj, Nk] -> { C[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            2,
        )
        .edge(
            "A",
            "C",
            "[Ni, Nj, Nk] -> { A[i, k] -> C[i2, j, k2] : i2 = i and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
        )
        .edge(
            "B",
            "C",
            "[Ni, Nj, Nk] -> { B[k, j] -> C[i, j2, k2] : j2 = j and k2 = k and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
        )
        .edge(
            "C",
            "C",
            "[Ni, Nj, Nk] -> { C[i, j, k] -> C[i2, j2, k + 1] : i2 = i and j2 = j and 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk - 1 }",
        )
        .build()
        .expect("well-formed DFG")
    };

    // Run the IOLB analysis (builder-style entry point; one session per run).
    let outcome = Analyzer::new()
        .max_parametrization_depth(0)
        .param("Ni", 1024)
        .param("Nj", 1024)
        .param("Nk", 1024)
        .cache_size(32_768)
        .analyze_with(build_dfg)
        .expect("analysis runs");
    let analysis = outcome.analysis();

    println!("Parametric lower bound on loads:");
    println!("  Q_low = {}", analysis.q_low);
    println!("  Q∞    = {}", analysis.q_asymptotic());
    println!(
        "  engine: {} feasibility checks, {} eliminations, {:.0}% cache hits",
        outcome.stats.FEASIBILITY_CHECKS,
        outcome.stats.FM_ELIMINATIONS,
        outcome.stats.feasibility_hit_rate().unwrap_or(0.0) * 100.0
    );

    // Derive the OI upper bound and compare it with the machine balance.
    let oi = OiSummary::from_analysis(analysis, None).expect("operation count available");
    if let Some(up) = &oi.oi_up {
        println!("  OI_up = {}", up);
    }
    let params = [("Ni", 2000i128), ("Nj", 2000), ("Nk", 2000), ("S", 32_768)];
    let oi_large = oi.oi_at(&params).expect("evaluable");
    let machine_balance = 8.0;
    println!(
        "At Ni = Nj = Nk = 2000 and S = 32768 words: OI_up = {:.1} flops/word (machine balance {:.1})",
        oi_large, machine_balance
    );
    println!(
        "=> a well-tiled matrix multiplication can be made compute-bound: {}",
        oi_large > machine_balance
    );
}
